"""Structural reproduction of every paper figure (see DESIGN.md index).

Each test asserts the property the figure illustrates, on the figure's
own example program where one is given.
"""

import numpy as np
import pytest

from repro import nir
from repro.backend.cm2 import BackendOptions, Cm2Compiler, compile_block
from repro.driver.compiler import CompilerOptions, compile_source
from repro.machine.weitek import (
    VECTOR_REGISTERS,
    VECTOR_WIDTH,
    WeitekTimings,
)
from repro.peac import NUM_VREGS, format_routine
from repro.programs.kernels import blocking_source, where_source
from repro.transform import Options, PhaseClassifier, PhaseKind

from .conftest import lower, transform

FIG12_SOURCE = """
double precision, array(32,32) :: z, v, u, p, ptmp, tmp0, tmp1, tmp2
double precision fsdx, fsdy
fsdx = 0.04d0
fsdy = 0.025d0
z = (fsdx*(u - tmp0) - fsdy*(u - tmp1)) / (ptmp + tmp2)
end
"""


def fig12_block(options):
    tp = transform(FIG12_SOURCE)
    body = tp.inner_body()
    actions = body.actions if isinstance(body, nir.Sequentially) else [body]
    move = [a for a in actions if isinstance(a, nir.Move)
            and isinstance(a.clauses[0].tgt, nir.AVar)][0]
    return compile_block(move, tp.env, tp.env.domains, options)


class TestFigure1Weitek:
    """Figure 1: the slicewise PE — 32 bit-serial processors + Weitek."""

    def test_register_file_decomposition(self):
        assert VECTOR_REGISTERS == NUM_VREGS == 8
        assert VECTOR_WIDTH == 4

    def test_spill_anchor(self):
        t = WeitekTimings()
        assert t.spill_restore_pair_cycles == 18
        assert t.spill_restore_pair_cycles == 3 * t.vector_op_cycles


class TestFigure2Structure:
    """Figure 2: the specification structure — the pipeline exists and
    each phase hands to the next."""

    def test_pipeline_stages_compose(self):
        src = "integer a(8)\na = a + 1\nend"
        exe = compile_source(src)
        assert exe.lowered is not None          # semantic lowering
        assert exe.transformed is not None      # NIR optimization
        assert exe.partition is not None        # CM2/NIR split
        assert exe.routines                     # PE/NIR output
        assert exe.host_program.ops             # FE/NIR output


class TestFigure4LoopRulesIndex:
    """Figure 4 is covered in depth by test_blocking_masking; here the
    four rules are checked once each against the written form."""

    def test_rules(self):
        from repro.transform import unroll_do
        body = nir.move1(nir.SVar("i"), nir.SVar("x"))
        # Rule 1: point.
        r1 = unroll_do(nir.Do(nir.Point(4), body, ("i",)))
        assert isinstance(r1, nir.Move)
        # Rule 2: interval unrolls to a SEQUENTIALLY.
        r2 = unroll_do(nir.Do(nir.SerialInterval(1, 2), body, ("i",)))
        assert isinstance(r2, nir.Sequentially)
        # Rule 3: singleton product == the dimension itself.
        r3 = unroll_do(nir.Do(nir.ProdDom((nir.SerialInterval(1, 2),)),
                              body, ("i",)))
        assert r3 == r2
        # Rule 4: product nests outer-first.
        body2 = nir.move1(nir.Binary(nir.BinOp.ADD, nir.SVar("i"),
                                     nir.SVar("j")), nir.SVar("x"))
        r4 = unroll_do(nir.Do(
            nir.ProdDom((nir.SerialInterval(1, 2),
                         nir.SerialInterval(1, 2))), body2, ("i", "j")))
        first_src = r4.actions[0].clauses[0].src
        assert first_src == nir.Binary(nir.BinOp.ADD, nir.int_const(1),
                                       nir.int_const(1))


class TestFigures5And6OperatorInventory:
    """Figures 5/6: the NIR operator vocabulary is complete."""

    CORE = ["Decl", "DeclSet", "Initialized", "Binary", "Unary", "SVar",
            "Scalar", "FcnCall", "RefIn", "CopyIn", "Program",
            "Sequentially", "Concurrently", "Move", "IfThenElse", "While",
            "RefOut", "CopyOut", "WithDecl", "Skip"]
    SHAPE = ["Point", "Interval", "SerialInterval", "ProdDom", "DField",
             "AVar", "Subscript", "Everywhere", "LocalUnder", "Do"]

    @pytest.mark.parametrize("name", CORE + SHAPE)
    def test_operator_exists(self, name):
        assert hasattr(nir, name)

    def test_core_types_exist(self):
        for t in ("INTEGER_32", "LOGICAL_32", "FLOAT_32", "FLOAT_64"):
            assert hasattr(nir, t)


class TestFigure7Forall:
    def test_single_parallel_move(self):
        lowered = lower("INTEGER, ARRAY(32,32) :: A\n"
                        "FORALL (i=1:32, j=1:32) A(i,j) = i+j\nEND")
        body = lowered.inner_body()
        assert isinstance(body, nir.Move)
        text = nir.pretty(lowered.nir)
        assert "BINARY(Add, local_under(domain 'alpha',1), "\
            "local_under(domain 'alpha',2))" in text
        assert "AVAR('a', everywhere)" in text


class TestFigure8ShapeParameterized:
    def test_lowering_matches_figure(self):
        lowered = lower("INTEGER K(128,64), L(128)\nL = 6\nK = 2*K+5\nEND")
        text = nir.pretty(lowered.nir)
        assert "WITH_DOMAIN(('alpha'" in text
        assert "WITH_DOMAIN(('beta'" in text
        assert "dfield({shape=domain 'alpha',element=integer_32})" in text
        assert "(True, (SCALAR(integer_32,'6'), AVAR('l', everywhere)))" \
            in text


class TestFigure9DomainBlocking:
    def test_three_moves_two_phases(self):
        tp = transform(blocking_source(64))
        body = tp.inner_body()
        moves = [a for a in body.actions if isinstance(a, nir.Move)
                 and isinstance(a.clauses[0].tgt, nir.AVar)]
        assert len(moves) == 2

    def test_alpha_block_composed(self):
        tp = transform(blocking_source(64))
        body = tp.inner_body()
        fused = [a for a in body.actions if isinstance(a, nir.Move)
                 and len(a.clauses) == 2]
        assert fused, "the two alpha-domain moves must form one block"
        targets = [c.tgt.name for c in fused[0].clauses]
        assert targets == ["a", "b"]

    def test_diagonal_notation(self):
        tp = transform(blocking_source(64))
        text = nir.pretty(tp.nir)
        assert "subscript[local_under" in text


class TestFigure10MaskedBlocking:
    def test_two_peac_routines(self):
        exe = compile_source(where_source(32))
        assert exe.partition.compute_blocks == 2

    def test_blocked_clause_count(self):
        exe = compile_source(where_source(32))
        assert max(exe.partition.block_clause_counts) == 3

    def test_semantics_preserved(self):
        from .conftest import assert_matches_reference
        assert_matches_reference(where_source(32))

    def test_pseudocode_structure(self):
        # "Compute the mask (0 mod 2) over the coordinate subgrid.
        #  Move (mask?A:5*A) into B."
        exe = compile_source(where_source(32))
        big = max(exe.routines.values(),
                  key=lambda r: r.instruction_count())
        ops = [i.op for i in big.body]
        assert "imodv" in ops     # coordinate residue mask
        assert "fselv" in ops     # masked move
        assert "imulv" in ops     # 5*A


class TestFigure11Partition:
    def test_alternating_shapes_partitioned(self):
        src = ("integer a(16,16), b(256)\ninteger s\n"
               "a = 1\nb = 2\na = a + 1\nb = b * 2\n"
               "s = sum(a)\nprint *, s\nend")
        exe = compile_source(src)
        # Blocking groups the two a-phases and the two b-phases; the
        # partitioner cuts each group into one node procedure.
        assert exe.partition.compute_blocks == 2
        from repro.runtime import host as h
        kinds = [type(op).__name__ for op in exe.host_program.ops]
        assert kinds.count("NodeCall") == 2
        assert "ReduceMove" in kinds


class TestFigure12PeacEncodings:
    def test_naive_instruction_count(self):
        naive = fig12_block(BackendOptions.naive())
        # The paper's naive encoding: 6 loads, 7 arithmetic ops, 1 store
        # = 14 body instructions (the jnz back edge is implicit).
        assert naive.routine.instruction_count() == 14

    def test_optimized_is_much_shorter(self):
        naive = fig12_block(BackendOptions.naive())
        opt = fig12_block(BackendOptions())
        # Paper: 15 lines naive vs 9 slots optimized (10 instructions).
        assert opt.routine.instruction_count() <= 10
        assert opt.routine.instruction_count() \
            <= naive.routine.instruction_count() - 4

    def test_optimized_uses_chained_operand(self):
        opt = fig12_block(BackendOptions())
        assert any(i.has_chained_mem for i in opt.routine.body)

    def test_optimized_uses_multiply_add(self):
        opt = fig12_block(BackendOptions())
        ops = {i.op for i in opt.routine.body}
        assert ops & {"fmav", "fmsv"}

    def test_optimized_uses_dual_issue(self):
        opt = fig12_block(BackendOptions())
        assert any(i.paired is not None for i in opt.routine.body)

    def test_naive_has_no_optimizations(self):
        naive = fig12_block(BackendOptions.naive())
        assert not any(i.has_chained_mem for i in naive.routine.body)
        assert not any(i.paired is not None for i in naive.routine.body)
        assert not {i.op for i in naive.routine.body} & {"fmav", "fmsv"}

    def test_both_encodings_compute_same_result(self):
        for opts in (BackendOptions.naive(), BackendOptions()):
            block = fig12_block(opts)
            assert block.routine.body[-1].op == "fstrv"

    def test_formatting_matches_figure_style(self):
        opt = fig12_block(BackendOptions())
        text = format_routine(opt.routine)
        assert text.splitlines()[0].endswith("_")
        assert "jnz ac2" in text
