"""Transformation tests: regions, dependence, normalize, phases."""

import pytest

from repro import nir
from repro.transform import (
    EffectAnalyzer,
    Normalizer,
    PhaseClassifier,
    PhaseKind,
    may_depend,
    regions as rg,
)
from repro.transform.pipeline import unwrap_body

from .conftest import lower


class TestRegions:
    def test_full_region(self):
        r = rg.full_region((8, 8))
        assert r.is_full and r.extents == (8, 8) and r.size() == 64

    def test_everywhere_field_region(self):
        r = rg.region_of_field(nir.Everywhere(), (8, 4), {})
        assert r.is_full

    def test_subscript_ranges(self):
        field = nir.Subscript((
            nir.IndexRange(nir.int_const(2), nir.int_const(6)),
            nir.IndexRange(None, None),
        ))
        r = rg.region_of_field(field, (8, 4), {})
        assert r.axes == ((2, 6, 1), (1, 4, 1))
        assert r.extents == (5, 4)
        assert not r.is_full

    def test_scalar_index_pins_axis(self):
        field = nir.Subscript((nir.int_const(3),
                               nir.IndexRange(None, None)))
        r = rg.region_of_field(field, (8, 4), {})
        assert r.axes[0] == (3, 3, 1)

    def test_svar_index_is_inexact(self):
        field = nir.Subscript((nir.SVar("i"),))
        r = rg.region_of_field(field, (8,), {})
        assert not r.exact

    def test_local_under_index_exact_span(self):
        field = nir.Subscript((nir.LocalUnder(nir.Interval(1, 8), 1),))
        r = rg.region_of_field(field, (8,), {})
        assert r.exact and r.axes[0] == (1, 8, 1)

    def test_odd_even_strides_disjoint(self):
        a = rg.Region((32,), ((1, 31, 2),))
        b = rg.Region((32,), ((2, 32, 2),))
        assert not rg.regions_overlap(a, b)

    def test_same_stride_same_phase_overlap(self):
        a = rg.Region((32,), ((1, 31, 2),))
        b = rg.Region((32,), ((3, 17, 2),))
        assert rg.regions_overlap(a, b)

    def test_disjoint_boxes(self):
        a = rg.Region((32,), ((1, 10, 1),))
        b = rg.Region((32,), ((11, 20, 1),))
        assert not rg.regions_overlap(a, b)

    def test_inexact_always_overlaps(self):
        a = rg.unknown_region((8,))
        b = rg.Region((8,), ((1, 1, 1),))
        assert rg.regions_overlap(a, b)

    def test_2d_disjoint_on_one_axis(self):
        a = rg.Region((8, 8), ((1, 4, 1), (1, 8, 1)))
        b = rg.Region((8, 8), ((5, 8, 1), (1, 8, 1)))
        assert not rg.regions_overlap(a, b)

    def test_different_bases_incomparable(self):
        with pytest.raises(ValueError):
            rg.regions_overlap(rg.full_region((4,)), rg.full_region((5,)))

    def test_regions_equal(self):
        a = rg.Region((8,), ((2, 6, 2),))
        assert rg.regions_equal(a, rg.Region((8,), ((2, 6, 2),)))
        assert not rg.regions_equal(a, rg.Region((8,), ((2, 6, 1),)))

    def test_region_shape_roundtrip(self):
        a = rg.Region((8, 8), ((2, 6, 2), (1, 8, 1)))
        assert nir.extents(rg.region_shape(a)) == a.extents


class TestDependence:
    def analyzer(self, src):
        lowered = lower(src)
        return lowered, EffectAnalyzer(lowered.env)

    def test_move_effects(self):
        lowered, an = self.analyzer(
            "integer a(8), b(8)\na = b + 1\nend")
        (move,) = [x for x in nir.imperatives.walk(lowered.inner_body())
                   if isinstance(x, nir.Move)]
        eff = an.effects(move)
        assert "b" in eff.array_reads and "a" in eff.array_writes

    def test_flow_dependence(self):
        lowered, an = self.analyzer(
            "integer a(8), b(8)\na = 1\nb = a\nend")
        m1, m2 = [x for x in nir.imperatives.walk(lowered.inner_body())
                  if isinstance(x, nir.Move)]
        assert may_depend(an.effects(m1), an.effects(m2))

    def test_independent_moves(self):
        lowered, an = self.analyzer(
            "integer a(8), b(8)\na = 1\nb = 2\nend")
        m1, m2 = [x for x in nir.imperatives.walk(lowered.inner_body())
                  if isinstance(x, nir.Move)]
        assert not may_depend(an.effects(m1), an.effects(m2))

    def test_disjoint_sections_independent(self):
        lowered, an = self.analyzer(
            "integer a(32)\na(1:16) = 1\na(17:32) = 2\nend")
        m1, m2 = [x for x in nir.imperatives.walk(lowered.inner_body())
                  if isinstance(x, nir.Move)]
        assert not may_depend(an.effects(m1), an.effects(m2))

    def test_overlapping_sections_dependent(self):
        lowered, an = self.analyzer(
            "integer a(32)\na(1:16) = 1\na(10:20) = 2\nend")
        m1, m2 = [x for x in nir.imperatives.walk(lowered.inner_body())
                  if isinstance(x, nir.Move)]
        assert may_depend(an.effects(m1), an.effects(m2))

    def test_scalar_dependence(self):
        lowered, an = self.analyzer(
            "integer x, y\nx = 1\ny = x\nend")
        m1, m2 = [x for x in nir.imperatives.walk(lowered.inner_body())
                  if isinstance(x, nir.Move)]
        assert may_depend(an.effects(m1), an.effects(m2))

    def test_print_is_barrier(self):
        lowered, an = self.analyzer("integer x\nx = 1\nprint *, 2\nend")
        body = lowered.inner_body()
        call = [n for n in nir.imperatives.walk(body)
                if isinstance(n, nir.CallStmt)][0]
        move = [n for n in nir.imperatives.walk(body)
                if isinstance(n, nir.Move)][0]
        assert may_depend(an.effects(call), an.effects(move))

    def test_effects_merge(self):
        from repro.transform.dependence import Effects
        a = Effects(scalar_reads={"x"})
        b = Effects(scalar_writes={"x"}, barrier=True)
        a.merge(b)
        assert a.barrier and "x" in a.scalar_writes


class TestNormalize:
    def normalize(self, src):
        lowered = lower(src)
        n = Normalizer(lowered.env)
        return unwrap_body(n.normalize(lowered.nir)), n, lowered

    def test_nested_cshift_hoisted(self):
        body, n, lowered = self.normalize(
            "integer v(8), z(8)\nz = v - cshift(v, -1)\nend")
        assert n.report.comm_hoisted == 1
        moves = [a for a in body.actions if isinstance(a, nir.Move)]
        assert moves[0].clauses[0].src.name == "cshift"
        assert isinstance(moves[0].clauses[0].tgt, nir.AVar)
        assert moves[0].clauses[0].tgt.name.startswith("tmp")

    def test_root_cshift_left_in_place(self):
        body, n, _ = self.normalize(
            "integer v(8), z(8)\nz = cshift(v, 1)\nend")
        assert n.report.comm_hoisted == 0

    def test_double_cshift(self):
        body, n, _ = self.normalize(
            "integer p(8,8), q(8,8)\n"
            "q = cshift(cshift(p, -1, 1), -1, 2)\nend")
        # The inner shift is hoisted; the outer stays as root.
        assert n.report.comm_hoisted == 1

    def test_comm_arg_materialized(self):
        body, n, _ = self.normalize(
            "integer v(8), z(8)\nz = cshift(v + 1, 1)\nend")
        moves = [a for a in body.actions if isinstance(a, nir.Move)]
        # First compute v+1 into a temp, then shift it.
        assert isinstance(moves[0].clauses[0].src, nir.Binary)
        assert moves[1].clauses[0].src.name == "cshift"

    def test_nested_reduction_hoisted(self):
        body, n, _ = self.normalize(
            "integer a(8)\ninteger s\na = 1\ns = sum(a) + 2\nend")
        assert n.report.reductions_hoisted == 1

    def test_root_reduction_left(self):
        body, n, _ = self.normalize(
            "integer a(8)\ninteger s\na = 1\ns = sum(a)\nend")
        assert n.report.reductions_hoisted == 0

    def test_misaligned_operand_copied(self):
        body, n, _ = self.normalize(
            "integer a(16), b(16)\n"
            "a(1:8) = b(9:16) + a(1:8)\nend")
        assert n.report.alignment_copies == 1

    def test_aligned_operands_untouched(self):
        body, n, _ = self.normalize(
            "integer a(16), b(16)\n"
            "a(1:8) = b(1:8) + a(1:8)\nend")
        assert n.report.alignment_copies == 0

    def test_plain_copy_not_hoisted(self):
        body, n, _ = self.normalize(
            "integer a(16)\na(1:8) = a(9:16)\nend")
        # A lone misaligned copy IS the communication; nothing to hoist.
        assert n.report.alignment_copies == 0

    def test_moves_preserved_count(self):
        body, n, _ = self.normalize(
            "integer a(8), b(8)\na = 1\nb = a + 1\nend")
        assert n.report.moves_in == 2
        assert n.report.moves_out == 2


class TestPhaseClassification:
    def classify_all(self, src):
        lowered = lower(src)
        normalizer = Normalizer(lowered.env)
        body = unwrap_body(normalizer.normalize(lowered.nir))
        classifier = PhaseClassifier(lowered.env)
        return classifier.split(body), lowered

    def test_compute_phase(self):
        phases, _ = self.classify_all("integer a(8)\na = a + 1\nend")
        assert phases[0].kind is PhaseKind.COMPUTE

    def test_comm_phase(self):
        phases, _ = self.classify_all(
            "integer a(8), b(8)\nb = cshift(a, 1)\nend")
        assert phases[0].kind is PhaseKind.COMM

    def test_misaligned_copy_is_comm(self):
        phases, _ = self.classify_all(
            "integer a(16)\na(1:8) = a(9:16)\nend")
        assert phases[0].kind is PhaseKind.COMM

    def test_aligned_section_copy_is_compute(self):
        phases, _ = self.classify_all(
            "integer a(16), b(16)\na(1:8) = b(1:8)\nend")
        assert phases[0].kind is PhaseKind.COMPUTE

    def test_reduce_phase(self):
        phases, _ = self.classify_all(
            "integer a(8)\ninteger s\na = 1\ns = sum(a)\nend")
        assert phases[-1].kind is PhaseKind.REDUCE

    def test_scalar_move_is_serial(self):
        phases, _ = self.classify_all("integer x\nx = 1\nend")
        assert phases[0].kind is PhaseKind.SERIAL

    def test_control_phase(self):
        phases, _ = self.classify_all(
            "integer x\nx = 0\ndo while (x < 3)\nx = x + 1\nend do\nend")
        kinds = [p.kind for p in phases]
        assert PhaseKind.CONTROL in kinds

    def test_compute_keys_distinguish_domains(self):
        phases, _ = self.classify_all(
            "integer a(8), b(9)\na = 1\nb = 2\nend")
        assert phases[0].key != phases[1].key

    def test_compute_keys_match_same_domain(self):
        phases, _ = self.classify_all(
            "integer a(8), b(8)\na = 1\nb = 2\nend")
        assert phases[0].key == phases[1].key


class TestCommCse:
    def normalize(self, src, comm_cse=True):
        lowered = lower(src)
        n = Normalizer(lowered.env, comm_cse=comm_cse)
        return unwrap_body(n.normalize(lowered.nir)), n

    def test_duplicate_cshift_reused(self):
        body, n = self.normalize(
            "integer v(8), a(8), b(8)\n"
            "a = v - cshift(v, 1)\nb = v + cshift(v, 1)\nend")
        comms = [m for m in body.actions if isinstance(m, nir.Move)
                 and isinstance(m.clauses[0].src, nir.FcnCall)]
        assert len(comms) == 1
        assert n.report.comm_cse_hits == 1

    def test_different_shifts_not_merged(self):
        body, n = self.normalize(
            "integer v(8), a(8), b(8)\n"
            "a = v - cshift(v, 1)\nb = v + cshift(v, 2)\nend")
        assert n.report.comm_cse_hits == 0

    def test_store_invalidates(self):
        body, n = self.normalize(
            "integer v(8), a(8), b(8)\n"
            "a = v - cshift(v, 1)\nv = v + 1\nb = v + cshift(v, 1)\nend")
        assert n.report.comm_cse_hits == 0

    def test_root_comm_seeds_table(self):
        body, n = self.normalize(
            "integer v(8), a(8), b(8)\n"
            "a = cshift(v, 1)\nb = v + cshift(v, 1)\nend")
        # The second shift reuses the first move's target 'a'.
        assert n.report.comm_cse_hits == 1

    def test_root_target_overwrite_invalidates(self):
        body, n = self.normalize(
            "integer v(8), a(8), b(8)\n"
            "a = cshift(v, 1)\na = a + 1\nb = v + cshift(v, 1)\nend")
        assert n.report.comm_cse_hits == 0

    def test_control_flow_is_a_barrier(self):
        body, n = self.normalize(
            "integer v(8), a(8), b(8)\ninteger x\nx = 1\n"
            "a = v - cshift(v, 1)\n"
            "if (x > 0) then\nb = v + cshift(v, 1)\nendif\nend")
        assert n.report.comm_cse_hits == 0

    def test_disabled_by_option(self):
        body, n = self.normalize(
            "integer v(8), a(8), b(8)\n"
            "a = v - cshift(v, 1)\nb = v + cshift(v, 1)\nend",
            comm_cse=False)
        assert n.report.comm_cse_hits == 0

    def test_cse_semantics_preserved(self):
        import numpy as np
        from repro.driver.reference import run_reference
        from repro.frontend.parser import parse_program
        from repro.driver.compiler import compile_source
        src = ("integer v(12), a(12), b(12)\n"
               "forall (i=1:12) v(i) = i*i\n"
               "a = v - cshift(v, 1)\nb = v + cshift(v, 1)\n"
               "v = cshift(v, 1)\nend")
        res = compile_source(src).run()
        ref = run_reference(parse_program(src))
        for k in ("a", "b", "v"):
            np.testing.assert_array_equal(res.arrays[k], ref.arrays[k])
