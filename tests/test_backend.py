"""Back-end tests: selection, fma, chaining, regalloc, partition, CM/5."""

import numpy as np
import pytest

from repro import nir
from repro.backend.cm2 import (
    BackendOptions,
    Cm2Compiler,
    TooManyStreams,
    VProgram,
    allocate,
    chain_loads,
    compile_block,
    fuse_multiply_adds,
)
from repro.backend.cm2.regalloc import AllocationError
from repro.backend.cm2.vir import (
    SrcKind,
    StreamSpec,
    VOp,
    imm,
    scalar_src,
    stream_src,
    virt,
)
from repro.backend.cm5.compiler import Cm5Compiler
from repro.backend.cm5.vector_unit import split_routine, unit_of
from repro.peac import NUM_VREGS, Instr, Mem, PReg, VReg
from repro.runtime import host as h
from repro.transform.pipeline import unwrap_body

from .conftest import lower, transform


def compute_move(src, options=None):
    """Lower+optimize a one-statement program; return (move, env)."""
    tp = transform(src, options)
    body = tp.inner_body()
    actions = body.actions if isinstance(body, nir.Sequentially) else [body]
    moves = [a for a in actions if isinstance(a, nir.Move)
             and isinstance(a.clauses[0].tgt, nir.AVar)]
    return moves[0], tp.env


class TestSelection:
    def test_simple_add(self):
        move, env = compute_move("integer a(8), b(8)\na = b + 1\nend")
        block = compile_block(move, env, env.domains)
        ops = [i.op for i in block.routine.body]
        assert "iaddv" in ops
        assert "fstrv" in ops

    def test_float_ops_selected_for_doubles(self):
        move, env = compute_move(
            "double precision a(8), b(8)\na = b * 2.0d0\nend")
        ops = [i.op for i in compile_block(move, env, env.domains)
               .routine.body]
        assert "fmulv" in ops

    def test_masked_clause_uses_select(self):
        move, env = compute_move(
            "integer a(8), b(8)\nwhere (b > 0) a = 1\nend")
        ops = [i.op for i in compile_block(move, env, env.domains)
               .routine.body]
        assert "fselv" in ops
        assert "fcgtv" in ops

    def test_coordinates_become_streams(self):
        move, env = compute_move(
            "integer a(8)\nforall (i=1:8) a(i) = i\nend")
        block = compile_block(move, env, env.domains)
        kinds = [a["kind"] for a in block.arg_info]
        assert "coord" in kinds

    def test_scalars_become_sreg_args(self):
        move, env = compute_move(
            "integer a(8)\ninteger n\nn = 3\na = a + n\nend")
        block = compile_block(move, env, env.domains)
        scalar_args = [a for a in block.arg_info if a["kind"] == "scalar"]
        assert len(scalar_args) == 1
        assert scalar_args[0]["value"] == nir.SVar("n")

    def test_memoization_reuses_loads(self):
        move, env = compute_move(
            "double precision a(8), b(8)\na = b*b + b\nend")
        block = compile_block(move, env, env.domains)
        loads_of_b = [a for a in block.arg_info
                      if a.get("array") == "b"]
        assert len(loads_of_b) == 1

    def test_naive_mode_no_memoization(self):
        move, env = compute_move(
            "double precision a(8), b(8)\na = b*b + b\nend")
        naive = compile_block(move, env, env.domains,
                              BackendOptions.naive())
        opt = compile_block(move, env, env.domains)
        assert naive.routine.instruction_count() \
            > opt.routine.instruction_count()

    def test_transcendental_selection(self):
        move, env = compute_move(
            "double precision a(8)\na = sin(a) + sqrt(a)\nend")
        ops = [i.op for i in compile_block(move, env, env.domains)
               .routine.body]
        assert "fsinv" in ops and "fsqrtv" in ops

    def test_merge_selection(self):
        move, env = compute_move(
            "integer a(8), b(8), c(8)\nc = merge(a, b, a > b)\nend")
        ops = [i.op for i in compile_block(move, env, env.domains)
               .routine.body]
        assert "fselv" in ops

    def test_region_compute_section_streams(self):
        from repro.transform import Options
        move, env = compute_move(
            "integer a(16), b(16)\n"
            "a(1:8) = b(1:8) + a(1:8)\nend",
            Options(pad_masks=False))
        block = compile_block(move, env, env.domains)
        regions = {a.get("array"): a.get("region")
                   for a in block.arg_info if a["kind"] == "subgrid"}
        assert block.region_extents == (8,)
        assert all(r == ((1, 8, 1),) for r in regions.values())


class TestFmaFusion:
    def build(self, ops, n_virt):
        p = VProgram(n_virtuals=n_virt)
        p.ops = ops
        return p

    def test_mul_add_fuses(self):
        p = self.build([
            VOp("fmulv", (imm(2.0), imm(3.0)), 0),
            VOp("faddv", (virt(0), imm(1.0)), 1),
        ], 2)
        out = fuse_multiply_adds(p)
        assert [o.op for o in out.ops] == ["fmav"]

    def test_mul_sub_fuses(self):
        p = self.build([
            VOp("fmulv", (imm(2.0), imm(3.0)), 0),
            VOp("fsubv", (virt(0), imm(1.0)), 1),
        ], 2)
        out = fuse_multiply_adds(p)
        assert [o.op for o in out.ops] == ["fmsv"]

    def test_sub_from_const_not_fused(self):
        # c - a*b has no single-instruction Weitek chain.
        p = self.build([
            VOp("fmulv", (imm(2.0), imm(3.0)), 0),
            VOp("fsubv", (imm(1.0), virt(0)), 1),
        ], 2)
        out = fuse_multiply_adds(p)
        assert [o.op for o in out.ops] == ["fmulv", "fsubv"]

    def test_multi_use_mul_not_fused(self):
        p = self.build([
            VOp("fmulv", (imm(2.0), imm(3.0)), 0),
            VOp("faddv", (virt(0), imm(1.0)), 1),
            VOp("faddv", (virt(0), imm(5.0)), 2),
        ], 3)
        out = fuse_multiply_adds(p)
        assert [o.op for o in out.ops][0] == "fmulv"


class TestChaining:
    def test_single_use_load_folds(self):
        p = VProgram()
        sid = p.add_stream(StreamSpec(kind="array", array="b"))
        v = p.emit("load", (stream_src(sid),))
        p.emit("faddv", (v, imm(1.0)))
        out = chain_loads(p, {sid: "b"})
        assert [o.op for o in out.ops] == ["faddv"]
        assert any(s.kind is SrcKind.STREAM for s in out.ops[0].srcs)

    def test_double_use_load_kept(self):
        p = VProgram()
        sid = p.add_stream(StreamSpec(kind="array", array="b"))
        v = p.emit("load", (stream_src(sid),))
        p.emit("faddv", (v, v))
        out = chain_loads(p, {sid: "b"})
        assert [o.op for o in out.ops] == ["load", "faddv"]

    def test_no_second_memory_operand(self):
        p = VProgram()
        s1 = p.add_stream(StreamSpec(kind="array", array="a"))
        s2 = p.add_stream(StreamSpec(kind="array", array="b"))
        va = p.emit("load", (stream_src(s1),))
        vb = p.emit("load", (stream_src(s2),))
        p.emit("faddv", (va, vb))
        out = chain_loads(p, {s1: "a", s2: "b"})
        chained = sum(s.kind is SrcKind.STREAM
                      for o in out.ops if o.op != "load" for s in o.srcs)
        assert chained == 1          # only one of the two loads folds
        assert [o.op for o in out.ops][0] == "load"  # the other remains

    def test_load_never_crosses_store_to_same_array(self):
        p = VProgram()
        rd = p.add_stream(StreamSpec(kind="array", array="a",
                                     direction="r"))
        wr = p.add_stream(StreamSpec(kind="array", array="a",
                                     direction="w"))
        v = p.emit("load", (stream_src(rd),))
        w = p.emit("fmovv", (imm(0.0),))
        p.emit_store(w, wr)
        p.emit("faddv", (v, imm(1.0)))
        out = chain_loads(p, {rd: "a", wr: "a"})
        assert [o.op for o in out.ops][0] == "load"


class TestRegalloc:
    def chain_program(self, n):
        """n independent loads then a reduction tree over all of them."""
        p = VProgram()
        vals = []
        for i in range(n):
            sid = p.add_stream(StreamSpec(kind="array", array=f"a{i}"))
            vals.append(p.emit("load", (stream_src(sid),)))
        acc = vals[0]
        for v in vals[1:]:
            acc = p.emit("faddv", (acc, v))
        out = p.add_stream(StreamSpec(kind="array", array="out",
                                      direction="w"))
        p.emit_store(acc, out)
        return p

    def test_no_spills_under_pressure_limit(self):
        result = allocate(self.chain_program(NUM_VREGS))
        assert result.spills == 0

    def test_spills_when_pressure_exceeds(self):
        result = allocate(self.chain_program(NUM_VREGS + 3))
        assert result.spills > 0
        assert result.restores > 0
        assert result.spill_slots > 0

    def test_physical_registers_in_range(self):
        result = allocate(self.chain_program(NUM_VREGS + 4))
        for op in result.ops:
            if op.dst >= 0:
                assert 0 <= op.dst < NUM_VREGS
            for s in op.srcs:
                if s.kind is SrcKind.VIRT:
                    assert 0 <= s.index < NUM_VREGS

    def test_allocation_correctness_via_simulation(self):
        """Allocated code must compute the same value as unallocated."""
        p = self.chain_program(NUM_VREGS + 3)
        # Simulate the PhysOps with a simple register file + slots.
        result = allocate(p)
        regs = {}
        slots = {}
        streams = {i: float(i + 1) for i in range(len(p.streams))}
        stored = None
        for op in result.ops:
            def read(s):
                if s.kind is SrcKind.VIRT:
                    return regs[s.index]
                if s.kind is SrcKind.STREAM:
                    return streams[s.index]
                return s.value
            if op.op == "load":
                regs[op.dst] = read(op.srcs[0])
            elif op.op == "faddv":
                regs[op.dst] = read(op.srcs[0]) + read(op.srcs[1])
            elif op.op == "spill":
                slots[op.slot] = read(op.srcs[0])
            elif op.op == "restore":
                regs[op.dst] = slots[op.slot]
            elif op.op == "store":
                stored = read(op.srcs[0])
        n = NUM_VREGS + 3
        assert stored == sum(range(1, n + 1))

    def test_undefined_virtual_raises(self):
        p = VProgram(n_virtuals=5)
        p.ops = [VOp("faddv", (virt(3), virt(4)), 0)]
        with pytest.raises(AllocationError):
            allocate(p)


class TestPartition:
    def compile(self, src, options=None, transform_options=None):
        tp = transform(src, transform_options)
        compiler = Cm2Compiler(tp.env, options=options)
        return compiler.compile_program(tp.nir), compiler

    def test_host_node_division(self):
        prog, compiler = self.compile(
            "integer a(8), b(8)\ninteger s\n"
            "a = 1\nb = cshift(a, 1)\ns = sum(b)\nprint *, s\nend")
        kinds = [type(op).__name__ for op in prog.ops]
        assert "NodeCall" in kinds
        assert "CommMove" in kinds
        assert "ReduceMove" in kinds
        assert "Print" in kinds
        assert compiler.report.compute_blocks == 1

    def test_allocations_emitted_first(self):
        prog, _ = self.compile("integer a(8)\na = 1\nend")
        assert isinstance(prog.ops[0], h.Alloc)

    def test_serial_loop_becomes_host_loop(self):
        prog, _ = self.compile(
            "integer a(8)\ninteger i\n"
            "do 1 i=2,8\na(i) = a(i-1)\n1 continue\nend")
        loops = [op for op in prog.ops if isinstance(op, h.Loop)]
        assert len(loops) == 1
        assert isinstance(loops[0].body[0], h.ElementMove)

    def test_node_call_region_unpadded(self):
        from repro.transform import Options
        prog, _ = self.compile(
            "integer a(16)\na(1:8) = a(1:8) + 1\nend",
            transform_options=Options(pad_masks=False))
        call = [op for op in prog.ops if isinstance(op, h.NodeCall)][0]
        assert call.region_extents == (8,)
        assert call.real_elements == 8

    def test_node_call_region_padded(self):
        # With Figure 10 padding the block covers the full shape under a
        # coordinate mask.
        prog, _ = self.compile(
            "integer a(16)\na(1:8) = a(1:8) + 1\nend")
        call = [op for op in prog.ops if isinstance(op, h.NodeCall)][0]
        assert call.region_extents == (16,)

    def test_oversized_block_split(self):
        # 20 distinct arrays exceed the 16 pointer registers when fused
        # into one block; the compiler must split rather than fail.
        n = 20
        decls = "integer " + ", ".join(f"a{i}(8)" for i in range(n))
        stmts = "\n".join(f"a{i} = {i}" for i in range(n))
        prog, compiler = self.compile(decls + "\n" + stmts + "\nend")
        assert compiler.report.compute_blocks >= 2

    def test_routine_names_unique(self):
        prog, _ = self.compile(
            "integer a(8), b(9)\na = 1\nb = 2\nend")
        assert len(set(prog.routines)) == len(prog.routines)


class TestCm5:
    def test_three_way_split(self):
        tp = transform("double precision a(8), b(8)\ninteger m(8)\n"
                       "a = b * 2.0d0 + 1.0d0\nm = m + 1\nend")
        compiler = Cm5Compiler(tp.env)
        compiler.compile_program(tp.nir)
        assert compiler.report.node_splits
        total_vu = sum(s.vu_instructions
                       for s in compiler.report.node_splits)
        total_sparc = sum(s.sparc_instructions
                          for s in compiler.report.node_splits)
        assert total_vu > 0
        assert total_sparc > 0  # the integer move runs on the SPARC

    def test_unit_classification(self):
        fmul = Instr("fmulv", (VReg(0), VReg(1), VReg(2)))
        iadd = Instr("iaddv", (VReg(0), VReg(1), VReg(2)))
        assert unit_of(fmul) == "vu"
        assert unit_of(iadd) == "sparc"

    def test_split_counts_paired(self):
        from repro.peac import Routine
        r = Routine("t")
        r.body = [Instr("fmulv", (VReg(0), VReg(1), VReg(2)),
                        paired=Instr("flodv", (Mem(PReg(0)), VReg(3))))]
        split = split_routine(r)
        assert split.vu_instructions == 2

    def test_cm5_reuses_cm2_partitioning(self):
        src = "integer a(8), b(8)\na = 1\nb = cshift(a, 1)\nend"
        tp = transform(src)
        c5 = Cm5Compiler(tp.env)
        p5 = c5.compile_program(tp.nir)
        tp2 = transform(src)
        c2 = Cm2Compiler(tp2.env)
        p2 = c2.compile_program(tp2.nir)
        assert [type(o).__name__ for o in p5.ops] \
            == [type(o).__name__ for o in p2.ops]
