"""The serving stack: compile cache, worker pool, server, batch, CLI.

Covers the cache's content addressing, versioned invalidation, LRU cap
and corruption recovery; the pool's fan-out, crash-retry, per-job
timeout, and single-process fallback; the JSON-lines server round trip;
the metrics rollup; and the CLI integration (``repro batch``,
``compare`` pipeline/exec flags, ``REPRO_DEBUG``).  The cache's
correctness contract — bit-identical results cached vs uncached — is
property-tested over generated programs.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.driver.cli import main
from repro.driver.compiler import CompilerOptions, compile_source
from repro.machine import Machine, slicewise_model
from repro.programs.kernels import heat_source
from repro.service import cache as cache_mod
from repro.service.batch import batch_main, read_jobs
from repro.service.cache import CompileCache, cache_key
from repro.service.jobs import build_options, execute_request, speedup_str
from repro.service.metrics import LatencyStat, ServiceMetrics, percentile
from repro.service.pool import WorkerPool
from repro.service.server import ReproServer, send_request

TINY = """
program tiny
integer, parameter :: n = 8
double precision, array(n,n) :: a, b
a = 1.5d0
b = cshift(a, 1, 1) + a
print *, sum(b)
end program tiny
"""

EMPTY = "program p\nend program p\n"


def run_arrays(exe):
    result = exe.run(Machine(slicewise_model(n_pes=64)))
    return {name: arr.tobytes() for name, arr in result.arrays.items()}, \
        result.stats.to_dict()


# -- cache keys -------------------------------------------------------------


def test_cache_key_is_deterministic_and_option_sensitive():
    k1 = cache_key(TINY)
    assert k1 == cache_key(TINY)
    assert k1 != cache_key(TINY + "\n! trailing comment")
    assert k1 != cache_key(TINY, CompilerOptions.naive())
    assert k1 != cache_key(TINY, CompilerOptions.neighborhood())
    assert k1 != cache_key(TINY, machine={"pes": 64})
    import dataclasses

    cm5 = dataclasses.replace(CompilerOptions(), target="cm5")
    assert k1 != cache_key(TINY, cm5)


def test_cache_key_includes_pipeline_identity():
    """Reordering, disabling, or reconfiguring a pass changes the key."""
    from repro.transform import Options, pipeline_identity

    ident = pipeline_identity(Options())
    k1 = cache_key(TINY)
    # The default key already embeds the resolved identity.
    assert k1 == cache_key(TINY, pipeline=ident)
    # Reordering two passes invalidates.
    reordered = list(ident)
    reordered[0], reordered[1] = reordered[1], reordered[0]
    assert cache_key(TINY, pipeline=reordered) != k1
    # Dropping (disabling) a pass invalidates.
    dropped = [e for e in ident if e["name"] != "pad_masks"]
    assert cache_key(TINY, pipeline=dropped) != k1
    # Reconfiguring a pass invalidates.
    import copy

    reconfigured = copy.deepcopy(ident)
    for entry in reconfigured:
        if entry["name"] == "block":
            entry["config"]["fuse"] = False
    assert cache_key(TINY, pipeline=reconfigured) != k1


def test_cache_key_tracks_disabled_passes_through_options():
    import dataclasses

    from repro.transform import Options

    no_pad = dataclasses.replace(
        CompilerOptions(), transform=Options(pad_masks=False))
    assert cache_key(TINY) != cache_key(TINY, no_pad)


# -- hit/miss, persistence, warm plans --------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = CompileCache(str(tmp_path))
    exe, hit = cache.compile(TINY)
    assert not hit
    exe2, hit = cache.compile(TINY)
    assert hit
    assert exe2 is exe  # in-process memo: no second unpickle
    s = cache.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["entries"] == 1
    assert s["memo_hits"] == 1
    # A second cache on the same root sees the same entry (persistence)
    # but starts with an empty memo: the hit is a fresh unpickle.
    other = CompileCache(str(tmp_path))
    exe3, hit = other.compile(TINY)
    assert hit
    assert exe3 is not exe
    assert other.stats()["memo_hits"] == 0


def test_cache_memo_distrusts_changed_disk_entries(tmp_path):
    cache = CompileCache(str(tmp_path))
    key = cache_key(TINY)
    exe, _ = cache.compile(TINY)
    # Another process rewrites the entry: the stat signature changes,
    # so the memo is dropped and the entry re-read from disk.
    other = CompileCache(str(tmp_path))
    other.put(key, other.compile(TINY)[0])
    reloaded = cache.get(key)
    assert reloaded is not None and reloaded is not exe
    # Deleting the file invalidates the memo outright.
    os.unlink(cache._path(key))
    assert cache.get(key) is None


def test_cache_persists_warm_plan_specs(tmp_path):
    from repro.machine.plan import get_plan

    cache = CompileCache(str(tmp_path))
    key = cache_key(TINY)
    exe, _ = cache.compile(TINY)
    exe.run(Machine(slicewise_model(n_pes=64)))  # warm the plans
    warmed = {name: dict(get_plan(r).specs)
              for name, r in exe.routines.items()
              if getattr(r, "_plan", None) is not None
              and get_plan(r).specs}
    assert warmed, "running should have specialized at least one plan"
    cache.put(key, exe)
    # put() must not strip the caller's own warm plans...
    assert any(get_plan(r).specs for r in exe.routines.values())
    # ...and a copy loaded from disk (fresh instance: no memo) starts
    # with the persisted specializations.
    loaded = CompileCache(str(tmp_path)).get(key)
    assert loaded is not exe
    for name, specs in warmed.items():
        assert get_plan(loaded.routines[name]).specs == specs


@settings(max_examples=8, deadline=None)
@given(n=st.sampled_from([4, 6, 8, 12]),
       num=st.integers(-40, 40),
       shift=st.integers(-3, 3))
def test_cached_results_bit_identical(n, num, shift):
    """Property: a pickle round trip through the cache changes nothing
    about execution — arrays byte-for-byte equal, RunStats equal."""
    value = num / 8.0
    source = f"""
program gen
integer, parameter :: n = {n}
double precision, array(n,n) :: a, b, c
a = {value:.6f}d0
b = cshift(a, {shift}, 1) * 2.0d0 + a
c = b / (a * a + 1.0d0)
print *, sum(c)
end program gen
"""
    fresh, fresh_stats = run_arrays(compile_source(source, cache=False))
    with tempfile.TemporaryDirectory() as root:
        CompileCache(root).compile(source)    # populate (miss)
        # A fresh instance has no memo: this hit is a true pickle
        # round trip through the disk store.
        cached_exe, hit = CompileCache(root).compile(source)
        assert hit
        cached, cached_stats = run_arrays(cached_exe)
    assert fresh == cached
    assert fresh_stats == cached_stats


# -- invalidation, corruption, LRU ------------------------------------------


def test_cache_version_skew_purges_store(tmp_path, monkeypatch):
    cache = CompileCache(str(tmp_path))
    cache.compile(TINY)
    assert cache.stats()["entries"] == 1
    monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", 999)
    fresh = CompileCache(str(tmp_path))
    assert fresh.stats()["entries"] == 0
    _, hit = fresh.compile(TINY)
    assert not hit


def test_cache_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = CompileCache(str(tmp_path))
    key = cache_key(TINY)
    cache.compile(TINY)
    path = cache._path(key)
    with open(path, "wb") as f:
        f.write(b"not a pickle at all")
    assert cache.get(key) is None
    assert not os.path.exists(path)
    assert cache.errors == 1


def test_cache_lru_eviction_respects_size_cap(tmp_path):
    cache = CompileCache(str(tmp_path))
    cache.compile(TINY)
    entry_bytes = cache.stats()["bytes"]
    cache.clear()
    # Room for roughly two entries; insert four distinct programs.
    cache.max_bytes = int(entry_bytes * 2.5)
    sources = [heat_source(n=8 + 2 * i, steps=1) for i in range(4)]
    for source in sources:
        cache.compile(source)
    stats = cache.stats()
    assert stats["evictions"] >= 1
    assert stats["bytes"] <= cache.max_bytes
    # The newest entry always survives the sweep that its own put runs.
    assert cache.get(cache_key(sources[-1])) is not None


# -- compile_source integration ---------------------------------------------


def test_compile_source_cache_argument(tmp_path):
    cache = CompileCache(str(tmp_path))
    compile_source(TINY, cache=cache)
    assert cache.misses == 1
    compile_source(TINY, cache=cache)
    assert cache.hits == 1


def test_compile_source_env_opt_in(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    compile_source(TINY)
    compile_source(TINY)
    store = cache_mod.default_cache()
    assert store.stats()["entries"] == 1
    assert store.hits >= 1


# -- jobs -------------------------------------------------------------------


def test_build_options_mirrors_cli_presets():
    assert build_options(None) == CompilerOptions()
    assert build_options({"naive": True}) == CompilerOptions.naive()
    assert build_options({"neighborhood": True}) \
        == CompilerOptions.neighborhood()
    assert build_options({"target": "cm5"}).target == "cm5"


def test_execute_request_run_payload(tmp_path):
    cache = CompileCache(str(tmp_path))
    response = execute_request(
        {"op": "run", "source": TINY, "pes": 64, "id": "job-1"}, cache)
    assert response["ok"] and response["id"] == "job-1"
    assert response["cache"] == "miss"
    assert response["output"] == ["192.0"]
    assert response["stats"]["total_cycles"] > 0
    assert {"compile_seconds", "run_seconds"} <= set(response["timings"])
    # The post-run re-put persisted warm plans: a hit, ready to go.
    response = execute_request({"op": "run", "source": TINY, "pes": 64},
                               cache)
    assert response["cache"] == "hit"


def test_execute_request_errors_become_responses():
    response = execute_request({"op": "run", "source": "not fortran !!"},
                               None)
    assert not response["ok"]
    assert response["error"]["type"]
    response = execute_request({"op": "no-such-op"}, None)
    assert not response["ok"]
    assert "no-such-op" in response["error"]["message"]


def test_execute_request_compare_guards_zero_cycle_base():
    response = execute_request({"op": "compare", "source": EMPTY,
                                "pes": 64}, None)
    assert response["ok"]
    assert all(s["speedup"] == "n/a (zero-cycle base)"
               for s in response["speedups"])


def test_speedup_str_guard():
    assert speedup_str(100, 0) == "n/a (zero-cycle base)"
    assert speedup_str(150, 100) == "1.50x"


# -- worker pool ------------------------------------------------------------


def test_pool_inline_fallback(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_INPROC", "1")
    pool = WorkerPool(4, cache=str(tmp_path))
    assert pool.mode == "inline"
    response = pool.execute({"op": "run", "source": TINY, "pes": 64})
    assert response["ok"] and response["pool"]["mode"] == "inline"
    pool.close()


def test_pool_fans_out_and_shares_cache(tmp_path):
    requests = [{"op": "run", "source": heat_source(n=8 + 2 * i, steps=1),
                 "pes": 64} for i in range(4)]
    with WorkerPool(2, cache=str(tmp_path)) as pool:
        assert pool.mode == "pool"
        first = pool.map(requests)
        assert all(r["ok"] for r in first)
        assert {r["cache"] for r in first} == {"miss"}
        assert {r["pool"]["worker"] for r in first} == {0, 1}
        second = pool.map(requests)
        assert all(r["cache"] == "hit" for r in second)
    snap = pool.metrics.snapshot()
    assert snap["requests"] == 8
    assert snap["cache"]["hits"] == 4 and snap["cache"]["misses"] == 4


def test_pool_retries_crashed_worker_once(tmp_path):
    marker = str(tmp_path / "crashed-once")
    with WorkerPool(2) as pool:
        responses = pool.map([{"op": "_crash", "once": marker},
                              {"op": "ping"}])
        assert responses[0]["ok"] and responses[0]["survived"]
        assert responses[0]["pool"]["attempts"] == 2
        assert responses[1]["ok"]
        assert pool.metrics.retries == 1
        # A job that crashes every attempt errors out instead of looping.
        response = pool.execute({"op": "_crash"})
        assert not response["ok"]
        assert response["error"]["type"] == "WorkerCrash"
        # The pool stays serviceable afterwards.
        assert pool.execute({"op": "ping"})["ok"]


def test_pool_per_job_timeout(tmp_path):
    with WorkerPool(2, timeout=1.0) as pool:
        responses = pool.map([{"op": "_sleep", "seconds": 60},
                              {"op": "ping"}])
        assert not responses[0]["ok"]
        assert responses[0]["error"]["type"] == "JobTimeout"
        assert responses[1]["ok"]
        assert pool.metrics.timeouts == 1
        assert pool.execute({"op": "ping"})["ok"]


# -- metrics ----------------------------------------------------------------


def test_percentiles():
    samples = [float(i) for i in range(0, 101)]  # 0..100, 101 samples
    assert percentile(samples, 50) == 50.0
    assert percentile(samples, 95) == 95.0
    assert percentile(samples, 0) == 0.0
    assert percentile(samples, 100) == 100.0
    assert percentile([3.0], 95) == 3.0


def test_latency_stat_reservoir_caps():
    stat = LatencyStat(cap=16)
    for i in range(100):
        stat.add(float(i))
    snap = stat.snapshot()
    assert snap["count"] == 100
    assert len(stat.samples) == 16
    assert snap["max"] == 99.0


def test_metrics_rollup_and_summary():
    metrics = ServiceMetrics()
    metrics.observe({"op": "run", "ok": True, "cache": "hit",
                     "timings": {"compile_seconds": 0.01,
                                 "run_seconds": 0.02}},
                    queue_wait=0.001, total=0.05)
    metrics.observe({"op": "run", "ok": False, "cache": "miss",
                     "error": {"type": "JobTimeout", "message": "x"}},
                    queue_wait=0.002, total=2.0)
    snap = metrics.snapshot()
    assert snap["requests"] == 2 and snap["errors"] == 1
    assert snap["timeouts"] == 1
    assert snap["cache"]["hit_rate"] == 0.5
    assert snap["latency_seconds"]["total"]["count"] == 2
    summary = metrics.summary()
    assert "hit rate 50.0%" in summary and "p95" in summary


def test_metrics_fold_per_pass_timings():
    """Compile responses feed the per-pass rollup; cache hits do not
    double-count (their trace replays the original compile)."""
    metrics = ServiceMetrics()
    trace = {"passes": [
        {"name": "normalize", "enabled": True, "seconds": 0.004},
        {"name": "block", "enabled": True, "seconds": 0.002},
        {"name": "pad_masks", "enabled": False, "seconds": 0.0},
    ]}
    metrics.observe({"op": "compile", "ok": True, "cache": "miss",
                     "pipeline": trace,
                     "timings": {"compile_seconds": 0.01}})
    metrics.observe({"op": "compile", "ok": True, "cache": "hit",
                     "pipeline": trace,
                     "timings": {"compile_seconds": 0.0001}})
    snap = metrics.snapshot()
    assert snap["passes"]["normalize"]["count"] == 1
    assert snap["passes"]["block"]["count"] == 1
    assert "pad_masks" not in snap["passes"]
    assert "pass normalize" in metrics.summary()


def test_server_metrics_op_reports_passes(tmp_path):
    pool = WorkerPool(1, cache=str(tmp_path))
    server = ReproServer(port=0, pool=pool)
    server.start()
    try:
        addr = server.address
        assert send_request(addr, {"op": "compile", "source": TINY})["ok"]
        snap = send_request(addr, {"op": "metrics"})
        assert snap["ok"] and snap["op"] == "metrics"
        passes = snap["metrics"]["passes"]
        assert passes["normalize"]["count"] == 1
        assert passes["block"]["mean"] >= 0.0
    finally:
        server.stop()
        pool.close()


# -- server -----------------------------------------------------------------


def test_server_round_trip(tmp_path):
    pool = WorkerPool(1, cache=str(tmp_path))
    server = ReproServer(port=0, pool=pool)
    server.start()
    try:
        addr = server.address
        assert send_request(addr, {"op": "ping"})["ok"]
        response = send_request(
            addr, {"op": "run", "source": TINY, "pes": 64})
        assert response["ok"] and response["output"] == ["192.0"]
        batch = send_request(
            addr, {"op": "batch",
                   "requests": [{"op": "run", "source": TINY, "pes": 64},
                                {"op": "compile", "source": TINY}]})
        assert batch["ok"]
        assert [r["cache"] for r in batch["results"]] == ["hit", "hit"]
        stats = send_request(addr, {"op": "stats"})
        assert stats["metrics"]["requests"] == 4
        assert stats["cache"]["entries"] == 1
        assert stats["pool"]["workers"] == 1
        bad = send_request(addr, {"op": 42})
        assert not bad["ok"]
        garbage = send_request(addr, {"op": "batch", "requests": "nope"})
        assert garbage["error"]["type"] == "BadRequest"
    finally:
        server.stop()
        pool.close()


def test_server_shutdown_request(tmp_path):
    pool = WorkerPool(1, cache=str(tmp_path))
    server = ReproServer(port=0, pool=pool)
    thread = server.start()
    response = send_request(server.address, {"op": "shutdown"})
    assert response["ok"]
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    server.server_close()
    pool.close()


# -- batch runner -----------------------------------------------------------


def test_read_jobs_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text('# header\n\n{"op": "ping"}\n{"op": "compile", '
                    '"source": "program p\\nend program p"}\n')
    jobs = read_jobs(str(path))
    assert [j["op"] for j in jobs] == ["ping", "compile"]
    path.write_text('{"op": "ping"}\nnot json\n')
    with pytest.raises(ValueError, match="bad JSON"):
        read_jobs(str(path))


def test_batch_main_writes_results(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    jobs.write_text(json.dumps({"op": "run", "source": TINY, "pes": 64})
                    + "\n" + json.dumps({"op": "ping"}) + "\n")
    out = tmp_path / "results.jsonl"
    pool = WorkerPool(1, cache=str(tmp_path / "cache"))
    rc = batch_main(str(jobs), pool, out_path=str(out))
    assert rc == 0
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert len(lines) == 2 and all(r["ok"] for r in lines)
    assert "2 job(s), 0 failed" in capsys.readouterr().err


def test_batch_main_reports_failures(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    jobs.write_text('{"op": "no-such-op"}\n')
    rc = batch_main(str(jobs), WorkerPool(1))
    assert rc == 1
    assert "1 failed" in capsys.readouterr().err


# -- CLI --------------------------------------------------------------------


@pytest.fixture
def tiny_file(tmp_path):
    path = tmp_path / "tiny.f90"
    path.write_text(TINY)
    return str(path)


def test_cli_compare_accepts_pipeline_and_exec_flags(tiny_file, capsys):
    rc = main(["compare", tiny_file, "--pes", "64", "--exec", "interp",
               "--naive"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fortran-90-Y" in out and "speedup over" in out


def test_cli_compare_zero_cycle_base(tmp_path, capsys):
    path = tmp_path / "empty.f90"
    path.write_text(EMPTY)
    rc = main(["compare", str(path), "--pes", "64"])
    assert rc == 0
    assert "n/a (zero-cycle base)" in capsys.readouterr().out


def test_cli_batch_command(tiny_file, tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    jobs.write_text(json.dumps({"op": "run", "file": tiny_file,
                                "pes": 64}) + "\n")
    rc = main(["batch", str(jobs), "--cache-dir",
               str(tmp_path / "cache")])
    assert rc == 0
    captured = capsys.readouterr()
    assert "192.0" in captured.out
    assert "1 job(s), 0 failed" in captured.err


def test_cli_run_cache_flag(tiny_file, tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clicache"))
    assert main(["run", tiny_file, "--pes", "64", "--cache"]) == 0
    store = cache_mod.default_cache()
    assert store.stats()["entries"] == 1
    capsys.readouterr()


def test_cli_debug_reraises(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG", "1")
    with pytest.raises(FileNotFoundError):
        main(["run", str(tmp_path / "missing.f90")])
    monkeypatch.delenv("REPRO_DEBUG")
    assert main(["run", str(tmp_path / "missing.f90")]) == 2


def test_cli_debug_traceback_in_worker_response():
    response = execute_request({"op": "run", "source": "oops"}, None)
    assert "traceback" not in response["error"]
    os.environ["REPRO_DEBUG"] = "1"
    try:
        response = execute_request({"op": "run", "source": "oops"}, None)
        assert "traceback" in response["error"]
    finally:
        del os.environ["REPRO_DEBUG"]
