"""Fast-path execution engine: plans, buffer pool, kernels, equivalence.

The compiled-plan engine (:mod:`repro.machine.plan` and
:mod:`repro.machine.kernel`) must be observationally identical to the
:class:`VectorExecutor` oracle: bit-identical arrays and identical
:class:`RunStats` for every routine and binding.  These tests pin the
plan cache, the buffer pool, dual-issue commit semantics, spill-scratch
dtypes, the shared coordinate cache, and — via hypothesis — random
routine/binding equivalence through the full ``Machine`` dispatch.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    Machine,
    MachineError,
    SubgridStream,
    VectorExecutor,
    cycles_per_trip,
    flops_per_element,
    slicewise_model,
)
from repro.machine.plan import (
    _UNBOUND,
    BufferPool,
    get_plan,
    invalidate_plan,
)
from repro.peac import Imm, Instr, Mem, PReg, Routine, SReg, VReg
from repro.peac.isa import NUM_PREGS, NUM_SREGS, CReg, ParamSpec


def make_routine(instrs, dtype="float64", spill_slots=0):
    r = Routine("t")
    r.body = list(instrs)
    r.dtype = dtype
    r.spill_slots = spill_slots
    return r


def run_interp(routine, pointers, scalars=None):
    ex = VectorExecutor()
    for preg, arr in (pointers or {}).items():
        ex.bind_pointer(PReg(preg), SubgridStream(arr))
    for sreg, val in (scalars or {}).items():
        ex.bind_scalar(SReg(sreg), val)
    ex.run(routine)
    return ex


def run_fast(routine, pointers, scalars=None):
    streams = [None] * NUM_PREGS
    for preg, arr in (pointers or {}).items():
        streams[preg] = SubgridStream(arr)
    svals = [_UNBOUND] * NUM_SREGS
    for sreg, val in (scalars or {}).items():
        svals[sreg] = val
    plan = get_plan(routine)
    plan.execute(streams, svals)
    return plan


def both_engines(instrs, arrays, scalars=None, dtype="float64"):
    """Run interp and the *specialized* fast path from identical inputs.

    Returns ``(interp_arrays, fast_arrays)`` dicts keyed like
    ``arrays``.  The fast path runs once on scratch copies (the
    recording pass) and once on the measured copies so the comparison
    exercises the compiled steps / kernel, not the recorder.
    """
    routine = make_routine(instrs, dtype=dtype)
    ai = {k: np.array(v, copy=True) for k, v in arrays.items()}
    run_interp(routine, ai, scalars)
    warm = {k: np.array(v, copy=True) for k, v in arrays.items()}
    run_fast(routine, warm, scalars)
    af = {k: np.array(v, copy=True) for k, v in arrays.items()}
    run_fast(routine, af, scalars)
    return ai, af


def assert_bit_identical(ai, af):
    for key in ai:
        assert ai[key].dtype == af[key].dtype, key
        assert ai[key].tobytes() == af[key].tobytes(), key


class TestPlanCache:
    def body(self):
        return [
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fmulv", (VReg(0), Imm(2.0), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(1)))),
        ]

    def test_plan_compiled_once_per_routine(self):
        r = make_routine(self.body())
        assert get_plan(r) is get_plan(r)

    def test_in_place_body_edit_invalidates(self):
        r = make_routine(self.body())
        first = get_plan(r)
        r.body = self.body() + [Instr("fstrv", (VReg(0), Mem(PReg(1))))]
        assert get_plan(r) is not first

    def test_explicit_invalidation(self):
        r = make_routine(self.body())
        first = get_plan(r)
        invalidate_plan(r)
        assert get_plan(r) is not first

    def test_plan_cost_matches_oracle_accounting(self):
        # The hoisted per-plan costs must agree with the per-dispatch
        # functions the interpreter path uses.
        model = slicewise_model()
        load = Instr("flodv", (Mem(PReg(1)), VReg(2)))
        r = make_routine(self.body() + [
            Instr("fmav", (VReg(0), VReg(1), Imm(1.0), VReg(2)),
                  paired=load),
        ])
        plan = get_plan(r)
        assert plan.cycles_per_trip(model) == cycles_per_trip(r, model)
        assert plan.flops_per_element == flops_per_element(r)
        # Second lookup hits the per-plan cache and stays consistent.
        assert plan.cycles_per_trip(model) == cycles_per_trip(r, model)


class TestBufferPool:
    def test_acquire_prefers_released_buffer(self):
        pool = BufferPool()
        a = pool.acquire((32,), np.float64)
        addr = a.__array_interface__["data"][0]
        pool.release(a)
        b = pool.acquire((32,), np.float64)
        assert b.__array_interface__["data"][0] == addr
        assert pool.hits == 1

    def test_reshape_round_trip(self):
        pool = BufferPool()
        a = pool.acquire((4, 8), np.float32)
        assert a.shape == (4, 8) and a.dtype == np.float32
        pool.release(a)
        b = pool.acquire((32,), np.float32)  # same element count
        assert b.shape == (32,)
        assert pool.hits == 1

    def test_dtype_buckets_are_distinct(self):
        pool = BufferPool()
        a = pool.acquire((16,), np.float64)
        pool.release(a)
        b = pool.acquire((16,), np.int32)
        assert b.dtype == np.int32
        assert pool.misses == 2

    def test_per_key_cap_drops_excess(self):
        pool = BufferPool(per_key=1)
        a = pool.acquire((8,), np.float64)
        b = pool.acquire((8,), np.float64)
        pool.release(a)
        pool.release(b)  # over the bucket cap: dropped
        pool.acquire((8,), np.float64)
        assert pool.hits == 1
        pool.acquire((8,), np.float64)
        assert pool.misses == 3

    def test_max_bytes_bounds_pool(self):
        pool = BufferPool(max_bytes=100)
        a = pool.acquire((64,), np.float64)  # 512 bytes > max
        pool.release(a)
        pool.acquire((64,), np.float64)
        assert pool.hits == 0


class TestExecModeSelection:
    def test_invalid_mode_rejected(self):
        with pytest.raises(MachineError):
            Machine(slicewise_model(64), exec_mode="bogus")

    def test_env_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "interp")
        assert Machine(slicewise_model(64)).exec_mode == "interp"

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "interp")
        m = Machine(slicewise_model(64), exec_mode="fast")
        assert m.exec_mode == "fast"


class TestDualIssueCommitSemantics:
    """Both halves of a dual-issue pair read pre-instruction state."""

    def case_paired_load_overwrites_main_source(self):
        # The paired load retargets aV0, which the main add reads: the
        # add must see the OLD aV0; the load lands afterwards.
        return [
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("faddv", (VReg(0), Imm(1.0), VReg(1)),
                  paired=Instr("flodv", (Mem(PReg(1)), VReg(0)))),
            Instr("fstrv", (VReg(1), Mem(PReg(2)))),
            Instr("fstrv", (VReg(0), Mem(PReg(3)))),
        ]

    def case_pair_reads_register_main_writes(self):
        # The main add writes aV1; the paired store reads aV1 and must
        # push the value from BEFORE the instruction to memory.
        return [
            Instr("flodv", (Mem(PReg(0)), VReg(1))),
            Instr("faddv", (VReg(1), Imm(10.0), VReg(1)),
                  paired=Instr("fstrv", (VReg(1), Mem(PReg(3))))),
            Instr("fstrv", (VReg(1), Mem(PReg(2)))),
        ]

    def test_interp_paired_load(self):
        a = np.array([1.0, 2.0])
        b = np.array([100.0, 200.0])
        out = {2: np.zeros(2), 3: np.zeros(2)}
        run_interp(make_routine(self.case_paired_load_overwrites_main_source()),
                   {0: a, 1: b, 2: out[2], 3: out[3]})
        assert list(out[2]) == [2.0, 3.0]      # pre-state aV0 + 1
        assert list(out[3]) == [100.0, 200.0]  # then the load landed

    def test_interp_pair_reads_pre_write(self):
        a = np.array([3.0, 5.0])
        out = {2: np.zeros(2), 3: np.zeros(2)}
        run_interp(make_routine(self.case_pair_reads_register_main_writes()),
                   {0: a, 2: out[2], 3: out[3]})
        assert list(out[2]) == [13.0, 15.0]  # main result committed
        assert list(out[3]) == [3.0, 5.0]    # pair stored pre-state aV1

    @pytest.mark.parametrize("case", ["paired_load_overwrites_main_source",
                                      "pair_reads_register_main_writes"])
    def test_fast_path_mirrors_interp(self, case):
        instrs = getattr(self, f"case_{case}")()
        arrays = {0: np.array([1.0, 2.0]), 1: np.array([100.0, 200.0]),
                  2: np.zeros(2), 3: np.zeros(2)}
        ai, af = both_engines(instrs, arrays)
        assert_bit_identical(ai, af)

    @pytest.mark.parametrize("case", ["paired_load_overwrites_main_source",
                                      "pair_reads_register_main_writes"])
    def test_fast_path_mirrors_interp_without_kernels(self, case,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_FAST_KERNEL", "0")
        instrs = getattr(self, f"case_{case}")()
        arrays = {0: np.array([1.0, 2.0]), 1: np.array([100.0, 200.0]),
                  2: np.zeros(2), 3: np.zeros(2)}
        ai, af = both_engines(instrs, arrays)
        assert_bit_identical(ai, af)


class TestSpillScratchDtype:
    def spill_routine(self, dtype):
        # Spill 1e8 to scratch, restore, add 1, subtract 1e8.  In
        # float32 the add is absorbed (spacing at 1e8 is 8), so the
        # result is exactly 0.  A float64 scratch would leak precision
        # back in and yield 1 instead.
        r = make_routine([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fstrv", (VReg(0), Mem(PReg(NUM_PREGS - 1)))),
            Instr("flodv", (Mem(PReg(NUM_PREGS - 1)), VReg(1))),
            Instr("faddv", (VReg(1), Imm(1.0), VReg(2))),
            Instr("fsubv", (VReg(2), Imm(1.0e8), VReg(3))),
            Instr("fstrv", (VReg(3), Mem(PReg(0)))),
        ], dtype=dtype, spill_slots=1)
        r.params = [ParamSpec("subgrid", "a.w0", PReg(0)),
                    ParamSpec("vlen", "vlen", CReg(2))]
        return r

    @pytest.mark.parametrize("mode", ["fast", "interp"])
    def test_float32_spill_keeps_float32_rounding(self, mode):
        m = Machine(slicewise_model(16), exec_mode=mode)
        m.alloc("a", (8,), np.dtype(np.float32))
        m.set_array("a", np.full(8, 1.0e8, dtype=np.float32))
        m.call_routine(self.spill_routine("float32"),
                       {"a.w0": m.view("a", None)}, (8,))
        assert m.home("a").data.dtype == np.float32
        assert np.all(m.home("a").data == 0.0)

    @pytest.mark.parametrize("mode", ["fast", "interp"])
    def test_spill_scratch_starts_zeroed(self, mode):
        # Reading an untouched spill slot yields zeros, even when the
        # pooled buffer was dirtied by an earlier call.
        r = make_routine([
            Instr("flodv", (Mem(PReg(NUM_PREGS - 1)), VReg(0))),
            Instr("fstrv", (VReg(0), Mem(PReg(0)))),
        ], spill_slots=1)
        r.params = [ParamSpec("subgrid", "a.w0", PReg(0))]
        m = Machine(slicewise_model(16), exec_mode=mode)
        m.alloc("a", (8,), np.dtype(np.float64))
        m.set_array("a", np.full(8, 7.0))
        dirty = self.spill_routine("float64")
        m.call_routine(dirty, {"a.w0": m.view("a", None)}, (8,))
        m.set_array("a", np.full(8, 7.0))
        m.call_routine(r, {"a.w0": m.view("a", None)}, (8,))
        assert np.all(m.home("a").data == 0.0)


class TestSharedCoordinateCache:
    def test_coordinate_array_shared_across_machines(self):
        m1 = Machine(slicewise_model(64))
        m2 = Machine(slicewise_model(64))
        c1 = m1.coord_subgrid((8, 8), 1, None)
        c2 = m2.coord_subgrid((8, 8), 1, None)
        assert c1 is c2
        assert not c1.flags.writeable

    def test_each_machine_still_charges_once(self):
        m1 = Machine(slicewise_model(64))
        m1.coord_subgrid((8, 8), 1, None)
        first = m1.stats.node_cycles
        assert first > 0
        m1.coord_subgrid((8, 8), 1, None)
        assert m1.stats.node_cycles == first  # cached per machine
        m2 = Machine(slicewise_model(64))
        m2.coord_subgrid((8, 8), 1, None)
        assert m2.stats.node_cycles == first  # fresh meter, same charge


class TestKernelCodegen:
    def saxpy(self):
        return [
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("flodv", (Mem(PReg(1)), VReg(1))),
            Instr("fmulv", (VReg(0), Imm(3.0), VReg(2))),
            Instr("faddv", (VReg(2), VReg(1), VReg(3))),
            Instr("fstrv", (VReg(3), Mem(PReg(2)))),
        ]

    def test_specialized_run_compiles_a_kernel(self):
        r = make_routine(self.saxpy())
        arrays = {0: np.arange(8.0), 1: np.ones(8), 2: np.zeros(8)}
        run_fast(r, arrays)
        plan = run_fast(r, arrays)
        assert plan._kernels
        assert any(callable(k) for k in plan._kernels.values())

    def test_kernel_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_KERNEL", "0")
        r = make_routine(self.saxpy())
        arrays = {0: np.arange(8.0), 1: np.ones(8), 2: np.zeros(8)}
        run_fast(r, arrays)
        plan = run_fast(r, arrays)
        assert not plan._kernels
        assert list(arrays[2]) == [3.0 * i + 1.0 for i in range(8)]

    def test_blocked_loop_matches_interp(self, monkeypatch):
        # Force several cache blocks (the clamp floor is 1024 elements)
        # over a size that does not divide evenly.
        monkeypatch.setenv("REPRO_FAST_BLOCK", "1024")
        n = 2500
        rng = np.random.default_rng(7)
        arrays = {0: rng.normal(size=n), 1: rng.normal(size=n),
                  2: np.zeros(n)}
        ai, af = both_engines(self.saxpy(), arrays)
        assert_bit_identical(ai, af)

    def test_overlapping_store_views_fall_back(self):
        # Output overlaps the input: the kernel prober must refuse and
        # the step engine must still match the oracle exactly.
        instrs = [
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("faddv", (VReg(0), Imm(1.0), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(1)))),
        ]
        base_i = np.arange(10.0)
        base_f = np.arange(10.0)
        routine = make_routine(instrs)
        run_interp(routine, {0: base_i[0:8], 1: base_i[1:9]})
        warm = np.arange(10.0)
        run_fast(routine, {0: warm[0:8], 1: warm[1:9]})
        run_fast(routine, {0: base_f[0:8], 1: base_f[1:9]})
        assert base_i.tobytes() == base_f.tobytes()

    def test_float32_imm_coercion(self):
        arrays = {0: np.linspace(0.1, 0.9, 16, dtype=np.float32),
                  1: np.ones(16, dtype=np.float32),
                  2: np.zeros(16, dtype=np.float32)}
        ai, af = both_engines(self.saxpy(), arrays, dtype="float32")
        assert_bit_identical(ai, af)

    def test_select_and_compare_kernel(self):
        instrs = [
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("flodv", (Mem(PReg(1)), VReg(1))),
            Instr("fcgtv", (VReg(0), VReg(1), VReg(2))),
            Instr("fselv", (VReg(2), VReg(0), VReg(1), VReg(3))),
            Instr("fstrv", (VReg(3), Mem(PReg(2)))),
        ]
        rng = np.random.default_rng(3)
        arrays = {0: rng.normal(size=32), 1: rng.normal(size=32),
                  2: np.zeros(32)}
        ai, af = both_engines(instrs, arrays)
        assert_bit_identical(ai, af)
        assert list(ai[2]) == list(np.maximum(arrays[0], arrays[1]))


# ---------------------------------------------------------------------------
# Property test: random routines through the full Machine dispatch
# ---------------------------------------------------------------------------

OPS = ["faddv", "fsubv", "fmulv", "fdivv", "fmaxv", "fminv"]


@st.composite
def routine_case(draw):
    n = draw(st.sampled_from([4, 16, 33]))
    dtype = draw(st.sampled_from(["float64", "float32"]))
    n_in = draw(st.integers(1, 3))
    finite = st.floats(-1e6, 1e6, allow_nan=False, width=32).map(float)
    body = [Instr("flodv", (Mem(PReg(i)), VReg(i))) for i in range(n_in)]
    defined = list(range(n_in))
    nxt = n_in
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(OPS))
        a = VReg(draw(st.sampled_from(defined)))
        b_reg = draw(st.one_of(st.none(), st.sampled_from(defined)))
        b = VReg(b_reg) if b_reg is not None else Imm(draw(finite))
        dst = nxt % 8
        nxt += 1
        paired = None
        if draw(st.booleans()):
            paired = Instr("flodv", (Mem(PReg(draw(st.integers(0, n_in - 1)))),
                                     VReg(draw(st.sampled_from(defined)))))
        body.append(Instr(kind, (a, b, VReg(dst)), paired=paired))
        if dst not in defined:
            defined.append(dst)
    body.append(Instr("fstrv", (VReg(defined[-1]), Mem(PReg(n_in)))))
    if draw(st.booleans()):
        body.append(Instr("fstrv",
                          (VReg(draw(st.sampled_from(defined))), Mem(PReg(0)))))
    inputs = [draw(st.lists(finite, min_size=n, max_size=n))
              for _ in range(n_in)]
    return n, dtype, n_in, body, inputs


def _dispatch(mode, case, repeats=2):
    n, dtype, n_in, body, inputs = case
    m = Machine(slicewise_model(16), exec_mode=mode)
    r = make_routine(body, dtype=dtype)
    r.params = [ParamSpec("subgrid", f"a{i}.w0", PReg(i))
                for i in range(n_in + 1)]
    for i in range(n_in):
        m.alloc(f"a{i}", (n,), np.dtype(dtype))
        m.set_array(f"a{i}", np.asarray(inputs[i], dtype=dtype))
    m.alloc(f"a{n_in}", (n,), np.dtype(dtype))
    args = {f"a{i}.w0": m.view(f"a{i}", None) for i in range(n_in + 1)}
    for _ in range(repeats):
        m.call_routine(r, args, (n,))
    return m, n_in


@given(case=routine_case())
@settings(max_examples=40, deadline=None)
def test_random_routines_bit_identical_and_stats_equal(case):
    mi, n_in = _dispatch("interp", case)
    mf, _ = _dispatch("fast", case)
    for i in range(n_in + 1):
        assert (mi.home(f"a{i}").data.tobytes()
                == mf.home(f"a{i}").data.tobytes())
    assert mi.stats.to_dict() == mf.stats.to_dict()


@given(case=routine_case())
@settings(max_examples=15, deadline=None)
def test_random_routines_match_with_kernels_disabled(case):
    old = os.environ.get("REPRO_FAST_KERNEL")
    os.environ["REPRO_FAST_KERNEL"] = "0"
    try:
        mi, n_in = _dispatch("interp", case)
        mf, _ = _dispatch("fast", case)
    finally:
        if old is None:
            os.environ.pop("REPRO_FAST_KERNEL", None)
        else:
            os.environ["REPRO_FAST_KERNEL"] = old
    for i in range(n_in + 1):
        assert (mi.home(f"a{i}").data.tobytes()
                == mf.home(f"a{i}").data.tobytes())
    assert mi.stats.to_dict() == mf.stats.to_dict()


class TestEndToEndModes:
    def test_compiled_program_modes_agree(self):
        from repro.driver.compiler import compile_source
        from repro.programs.swe import swe_source

        exe = compile_source(swe_source(n=16, itmax=2))
        ri = exe.run(machine=Machine(slicewise_model(64),
                                     exec_mode="interp"))
        rf = exe.run(machine=Machine(slicewise_model(64),
                                     exec_mode="fast"))
        assert set(ri.arrays) == set(rf.arrays)
        for name in ri.arrays:
            assert ri.arrays[name].tobytes() == rf.arrays[name].tobytes()
        assert ri.stats.to_dict() == rf.stats.to_dict()
        assert ri.gflops() == rf.gflops()
