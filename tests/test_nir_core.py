"""Core NIR domain tests: types, values, declarations, imperatives."""

import numpy as np
import pytest

from repro import nir
from repro.nir.types import TypeError_


class TestTypes:
    def test_scalar_kinds(self):
        assert nir.INTEGER_32.is_integer
        assert nir.LOGICAL_32.is_logical
        assert nir.FLOAT_32.is_float and nir.FLOAT_64.is_float

    def test_bits(self):
        assert nir.FLOAT_64.bits == 64
        assert nir.INTEGER_32.bits == 32

    def test_dtypes(self):
        assert nir.FLOAT_64.dtype == np.dtype(np.float64)
        assert nir.INTEGER_32.dtype == np.dtype(np.int32)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TypeError_):
            nir.ScalarType("float_128")

    def test_dfield_str(self):
        t = nir.DField(nir.DomainRef("alpha"), nir.INTEGER_32)
        assert "dfield" in str(t)
        assert "alpha" in str(t)

    def test_dfield_validation(self):
        with pytest.raises(TypeError_):
            nir.DField("not a shape", nir.INTEGER_32)  # type: ignore

    def test_base_element_nested(self):
        t = nir.DField(nir.Interval(1, 2),
                       nir.DField(nir.Interval(1, 3), nir.FLOAT_32))
        assert nir.base_element(t) == nir.FLOAT_32

    def test_full_shape_nested_cross_product(self):
        t = nir.DField(nir.Interval(1, 2),
                       nir.DField(nir.Interval(1, 3), nir.FLOAT_32))
        assert nir.extents(nir.full_shape(t)) == (2, 3)

    def test_full_shape_scalar_none(self):
        assert nir.full_shape(nir.FLOAT_64) is None

    def test_join_arith_promotion(self):
        assert nir.join_arith(nir.INTEGER_32, nir.FLOAT_64) == nir.FLOAT_64
        assert nir.join_arith(nir.FLOAT_32, nir.INTEGER_32) == nir.FLOAT_32
        assert nir.join_arith(nir.INTEGER_32, nir.INTEGER_32) \
            == nir.INTEGER_32

    def test_flop_weight(self):
        assert nir.flop_weight(nir.FLOAT_64) == 1
        assert nir.flop_weight(nir.INTEGER_32) == 0


class TestValues:
    def test_scalar_pyvalue(self):
        assert nir.int_const(7).pyvalue == 7
        assert nir.float_const(2.5).pyvalue == 2.5
        assert nir.TRUE.pyvalue is True

    def test_svar_str(self):
        assert str(nir.SVar("x")) == "SVAR 'x'"

    def test_avar_default_everywhere(self):
        a = nir.AVar("k")
        assert isinstance(a.field, nir.Everywhere)
        assert "everywhere" in str(a)

    def test_binary_str_matches_paper(self):
        v = nir.Binary(nir.BinOp.ADD, nir.SVar("a"), nir.SVar("b"))
        assert str(v) == "BINARY(Add, SVAR 'a', SVAR 'b')"

    def test_local_under_axis_validation(self):
        with pytest.raises(ValueError):
            nir.LocalUnder(nir.Interval(1, 4), 0)

    def test_subscript_str(self):
        s = nir.Subscript((nir.SVar("i"), nir.IndexRange(None, None)))
        assert "subscript" in str(s)

    def test_index_range_str(self):
        r = nir.IndexRange(nir.int_const(1), nir.int_const(9),
                           nir.int_const(2))
        assert ":" in str(r)

    def test_children_binary(self):
        v = nir.Binary(nir.BinOp.MUL, nir.SVar("a"), nir.int_const(2))
        assert len(nir.values.children(v)) == 2

    def test_scalar_vars_collect(self):
        v = nir.Binary(nir.BinOp.ADD, nir.SVar("a"),
                       nir.Unary(nir.UnOp.SIN, nir.SVar("c")))
        assert nir.scalar_vars(v) == {"a", "c"}

    def test_array_vars_collect(self):
        v = nir.FcnCall("cshift", (nir.AVar("v"), nir.int_const(-1),
                                   nir.int_const(1)))
        assert nir.array_vars(v) == {"v"}

    def test_array_vars_in_subscripts(self):
        v = nir.AVar("a", nir.Subscript((nir.SVar("i"),)))
        assert nir.scalar_vars(v) == {"i"}

    def test_is_constant(self):
        assert nir.is_constant(
            nir.Binary(nir.BinOp.ADD, nir.int_const(1), nir.int_const(2)))
        assert not nir.is_constant(nir.SVar("x"))

    def test_binop_classes(self):
        assert nir.BinOp.ADD.is_arithmetic
        assert nir.BinOp.LT.is_relational
        assert nir.BinOp.AND.is_logical
        assert nir.BinOp.MUL.is_commutative
        assert not nir.BinOp.SUB.is_commutative

    def test_unop_classes(self):
        assert nir.UnOp.SIN.is_transcendental
        assert nir.UnOp.TO_INT.is_conversion
        assert not nir.UnOp.NEG.is_transcendental


class TestDeclarations:
    def test_decl_str_matches_paper(self):
        d = nir.Decl("m", nir.FLOAT_64)
        assert str(d) == "DECL('m', float_64)"

    def test_declset_bindings(self):
        ds = nir.DeclSet((nir.Decl("m", nir.FLOAT_64),
                          nir.Decl("n", nir.FLOAT_64)))
        assert nir.bindings(ds) == [("m", nir.FLOAT_64),
                                    ("n", nir.FLOAT_64)]

    def test_initialized(self):
        d = nir.Initialized("n", nir.INTEGER_32, nir.int_const(64))
        assert nir.initial_values(d) == {"n": nir.int_const(64)}

    def test_nested_declsets_flatten(self):
        inner = nir.DeclSet((nir.Decl("a", nir.INTEGER_32),))
        outer = nir.DeclSet((inner, nir.Decl("b", nir.FLOAT_32)))
        assert [n for n, _ in nir.bindings(outer)] == ["a", "b"]


class TestImperatives:
    def test_move_clause_unconditional(self):
        m = nir.move1(nir.int_const(6), nir.AVar("l"))
        assert m.clauses[0].is_unconditional

    def test_masked_clause(self):
        mask = nir.Binary(nir.BinOp.GT, nir.AVar("a"), nir.int_const(3))
        m = nir.move1(nir.int_const(0), nir.AVar("a"), mask)
        assert not m.clauses[0].is_unconditional

    def test_seq_flattens(self):
        s = nir.seq(nir.Skip(), nir.seq(nir.Skip(), nir.move1(
            nir.int_const(1), nir.SVar("x"))), nir.Skip())
        assert isinstance(s, nir.Move)

    def test_seq_empty_is_skip(self):
        assert isinstance(nir.seq(), nir.Skip)
        assert isinstance(nir.seq(nir.Skip(), nir.Skip()), nir.Skip)

    def test_seq_preserves_order(self):
        m1 = nir.move1(nir.int_const(1), nir.SVar("x"))
        m2 = nir.move1(nir.int_const(2), nir.SVar("y"))
        s = nir.seq(m1, m2)
        assert s.actions == (m1, m2)

    def test_do_carries_index_names(self):
        d = nir.Do(nir.SerialInterval(1, 4),
                   nir.move1(nir.int_const(0), nir.SVar("x")),
                   index_names=("i",))
        assert d.index_names == ("i",)

    def test_child_imperatives(self):
        body = nir.move1(nir.int_const(0), nir.SVar("x"))
        node = nir.WithDomain("alpha", nir.Interval(1, 4), body)
        assert nir.imperatives.child_imperatives(node) == (body,)

    def test_values_of_move(self):
        m = nir.move1(nir.SVar("a"), nir.SVar("b"))
        vals = nir.imperatives.values_of(m)
        assert nir.SVar("a") in vals and nir.SVar("b") in vals

    def test_walk_traverses_nesting(self):
        body = nir.move1(nir.int_const(0), nir.SVar("x"))
        prog = nir.Program(nir.WithDecl(
            nir.DeclSet((nir.Decl("x", nir.INTEGER_32),)), body))
        nodes = list(nir.imperatives.walk(prog))
        assert body in nodes

    def test_ifthenelse_default_else_is_skip(self):
        node = nir.IfThenElse(nir.TRUE, nir.Skip())
        assert isinstance(node.els, nir.Skip)


class TestVisitor:
    def test_count_nodes(self):
        v = nir.Binary(nir.BinOp.ADD, nir.SVar("a"),
                       nir.Binary(nir.BinOp.MUL, nir.SVar("b"),
                                  nir.SVar("c")))
        m = nir.move1(v, nir.SVar("d"))
        assert nir.count_nodes(m, nir.Binary) == 2
        assert nir.count_nodes(m, nir.SVar) == 4

    def test_collect_preorder(self):
        v = nir.Binary(nir.BinOp.ADD, nir.SVar("a"), nir.SVar("b"))
        svars = nir.collect(v, nir.SVar)
        assert [s.name for s in svars] == ["a", "b"]

    def test_substitute_svars(self):
        v = nir.Binary(nir.BinOp.ADD, nir.SVar("i"), nir.int_const(1))
        out = nir.substitute_svars(v, {"i": nir.int_const(5)})
        assert out == nir.Binary(nir.BinOp.ADD, nir.int_const(5),
                                 nir.int_const(1))

    def test_substitute_untouched_shares_structure(self):
        v = nir.Binary(nir.BinOp.ADD, nir.SVar("a"), nir.SVar("b"))
        out = nir.substitute_svars(v, {"z": nir.int_const(1)})
        assert out is v

    def test_rename_domains(self):
        node = nir.WithDomain(
            "alpha", nir.Interval(1, 4),
            nir.Do(nir.DomainRef("alpha"), nir.Skip()))
        out = nir.rename_domains(node, {"alpha": "beta"})
        assert out.name == "beta"
        assert out.body.shape == nir.DomainRef("beta")

    def test_transform_bottom_up_rebuilds(self):
        v = nir.Binary(nir.BinOp.ADD, nir.int_const(1), nir.int_const(2))

        def fold(node):
            if isinstance(node, nir.Binary) \
                    and isinstance(node.left, nir.Scalar) \
                    and isinstance(node.right, nir.Scalar):
                return nir.int_const(node.left.rep + node.right.rep)
            return node

        assert nir.transform_bottom_up(v, fold) == nir.int_const(3)

    def test_walk_all_crosses_domains(self):
        m = nir.move1(nir.AVar("a"), nir.AVar("b"))
        prog = nir.WithDomain("alpha", nir.Interval(1, 4), m)
        kinds = {type(n).__name__ for n in nir.walk_all(prog)}
        assert {"WithDomain", "Interval", "Move", "MoveClause",
                "AVar", "Everywhere"} <= kinds


class TestPretty:
    def test_pretty_figure8_style(self):
        body = nir.Move((
            nir.MoveClause(nir.TRUE, nir.int_const(6), nir.AVar("l")),
        ))
        prog = nir.WithDomain("alpha", nir.Interval(1, 128), body)
        text = nir.pretty(prog)
        assert "WITH_DOMAIN(('alpha'" in text
        assert "MOVE[(True, (SCALAR(integer_32,'6'), "\
            "AVAR('l', everywhere)))]" in text

    def test_pretty_sequentially_layout(self):
        s = nir.Sequentially((nir.Skip(), nir.Skip()))
        text = nir.pretty(s)
        assert text.startswith("SEQUENTIALLY")
        assert "SKIP" in text

    def test_pretty_value(self):
        assert nir.pretty(nir.SVar("x")) == "SVAR 'x'"

    def test_pretty_rejects_non_nodes(self):
        with pytest.raises(TypeError):
            nir.pretty(42)
