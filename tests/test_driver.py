"""Driver, reference-interpreter, metrics and baseline-model tests."""

import numpy as np
import pytest

from repro.baselines import (
    Atomizer,
    compile_cmfortran,
    compile_starlisp,
    run_cmfortran,
    run_starlisp,
)
from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.metrics import speedup, summarize
from repro.driver.reference import ReferenceError_, run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, fieldwise_model, slicewise_model
from repro.machine.stats import RunStats


class TestReferenceInterpreter:
    def run(self, src, inputs=None):
        return run_reference(parse_program(src), inputs)

    def test_arrays_zero_initialized(self):
        ref = self.run("integer a(4)\na = a + 1\nend")
        np.testing.assert_array_equal(ref.arrays["a"], [1, 1, 1, 1])

    def test_integer_truncation_on_store(self):
        ref = self.run("integer a(2)\na = 7 / 2\nend")
        np.testing.assert_array_equal(ref.arrays["a"], [3, 3])

    def test_forall_reads_before_writes(self):
        # FORALL semantics: all RHS evaluated before any store.
        ref = self.run(
            "integer a(4)\nforall (i=1:4) a(i) = i\n"
            "forall (i=1:4) a(i) = a(5-i)\nend")
        np.testing.assert_array_equal(ref.arrays["a"], [4, 3, 2, 1])

    def test_where_mask_evaluated_once(self):
        ref = self.run(
            "integer a(4)\nforall (i=1:4) a(i) = i\n"
            "where (a > 2)\na = 0\nelsewhere\na = 9\nend where\nend")
        np.testing.assert_array_equal(ref.arrays["a"], [9, 9, 0, 0])

    def test_do_loop_with_negative_step(self):
        ref = self.run(
            "integer a(5)\ninteger i\n"
            "do i = 5, 1, -1\na(i) = 6 - i\nend do\nend")
        np.testing.assert_array_equal(ref.arrays["a"], [5, 4, 3, 2, 1])

    def test_stop_statement(self):
        ref = self.run("integer x\nx = 1\nstop\nx = 2\nend")
        assert ref.scalars["x"] == 1

    def test_print_output(self):
        ref = self.run("integer x\nx = 42\nprint *, x\nend")
        assert ref.output == ["42"]

    def test_unsupported_call_raises(self):
        with pytest.raises(ReferenceError_):
            self.run("call mystery()\nend")

    def test_use_before_set_raises(self):
        with pytest.raises(ReferenceError_):
            self.run("integer x, y\ny = x + 1\nend")

    def test_inputs_override(self):
        ref = self.run("integer a(3), b(3)\nb = a * 10\nend",
                       inputs={"a": np.array([1, 2, 3])})
        np.testing.assert_array_equal(ref.arrays["b"], [10, 20, 30])


class TestCompilerDriver:
    def test_compile_source_returns_reports(self):
        exe = compile_source("integer a(8)\na = 1\nend")
        assert exe.partition.compute_blocks == 1
        assert exe.transformed.report is not None

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            compile_source("integer a(4)\na=1\nend",
                           CompilerOptions(target="cm3"))

    def test_run_accumulates_stats(self):
        exe = compile_source("integer a(64)\na = 1\na = a + 1\nend")
        res = exe.run(Machine(slicewise_model(64)))
        assert res.stats.node_calls >= 1
        assert res.stats.total_cycles > 0
        assert res.stats.elements_computed >= 64

    def test_flop_counting_zero_for_integers(self):
        exe = compile_source("integer a(64)\na = a + 1\nend")
        res = exe.run(Machine(slicewise_model(64)))
        assert res.stats.flops == 0

    def test_flop_counting_for_doubles(self):
        exe = compile_source(
            "double precision a(64)\na = a + 1.0d0\nend")
        res = exe.run(Machine(slicewise_model(64)))
        assert res.stats.flops == 64

    def test_gflops_positive_for_float_work(self):
        exe = compile_source(
            "double precision a(256)\na = a * 2.0d0 + 1.0d0\nend")
        res = exe.run(Machine(slicewise_model(64)))
        assert res.gflops() > 0

    def test_separate_runs_fresh_machines(self):
        exe = compile_source("integer a(8)\na = a + 1\nend")
        r1 = exe.run(Machine(slicewise_model(64)))
        r2 = exe.run(Machine(slicewise_model(64)))
        np.testing.assert_array_equal(r1.arrays["a"], r2.arrays["a"])
        assert r1.stats.total_cycles == r2.stats.total_cycles


class TestMetrics:
    def test_summarize_row(self):
        stats = RunStats(node_cycles=70, call_cycles=10, comm_cycles=15,
                         host_cycles=5, flops=1000, node_calls=3)
        s = summarize("test", stats, 7.0e6)
        assert s.total_cycles == 100
        assert s.comm_fraction == pytest.approx(0.15)
        assert "test" in s.row()

    def test_speedup(self):
        a = summarize("a", RunStats(node_cycles=200), 1e6)
        b = summarize("b", RunStats(node_cycles=100), 1e6)
        assert speedup(a, b) == 2.0


class TestBaselines:
    SRC = ("double precision a(64), b(64)\n"
           "forall (i=1:64) a(i) = i * 0.5d0\n"
           "b = a * 2.0d0 + 1.0d0\nb = b + a\nend")

    def test_starlisp_atomizes(self):
        exe = compile_starlisp(self.SRC)
        # Atomized: strictly more node calls than the optimized pipeline.
        opt = compile_source(self.SRC)
        assert exe.partition.compute_blocks > opt.partition.compute_blocks

    def test_starlisp_single_op_routines(self):
        exe = compile_starlisp(self.SRC)
        for routine in exe.routines.values():
            arith = [i for i in routine.body
                     if i.kind not in ("load", "store", "move")]
            assert len(arith) <= 1

    def test_starlisp_correct(self):
        res = run_starlisp(self.SRC, n_pes=64)
        ref = run_reference(parse_program(self.SRC))
        np.testing.assert_allclose(res.arrays["b"], ref.arrays["b"])

    def test_cmfortran_statement_at_a_time(self):
        exe = compile_cmfortran(self.SRC)
        opt = compile_source(self.SRC)
        assert exe.partition.compute_blocks >= opt.partition.compute_blocks

    def test_cmfortran_correct(self):
        res = run_cmfortran(self.SRC, n_pes=64)
        ref = run_reference(parse_program(self.SRC))
        np.testing.assert_allclose(res.arrays["b"], ref.arrays["b"])

    def test_performance_ordering_on_float_kernel(self):
        # Large enough that node time dominates dispatch (vlen 128).
        n = 256 * 1024
        src = (f"double precision a({n}), b({n})\n"
               f"forall (i=1:{n}) a(i) = i * 0.001d0\n"
               "b = a * 2.0d0 + 1.0d0\n"
               "b = b * a - 0.5d0\n"
               "a = (a + b) / (b + 2.0d0)\nend")
        f90y = compile_source(src).run(Machine(slicewise_model()))
        cmf = compile_cmfortran(src).run(Machine(slicewise_model()))
        slisp = compile_starlisp(src).run(Machine(fieldwise_model()))
        assert f90y.stats.total_cycles <= cmf.stats.total_cycles
        assert cmf.stats.total_cycles < slisp.stats.total_cycles

    def test_atomizer_counts_operations(self):
        from repro.frontend.parser import parse_program as pp
        from repro.lowering import check_program, lower_program
        from repro.transform import optimize, Options
        from repro.transform.pipeline import unwrap_body

        lowered = lower_program(pp(self.SRC))
        check_program(lowered.nir, lowered.env)
        tp = optimize(lowered, Options(block=False, fuse=False,
                                       pad_masks=False))
        atomizer = Atomizer(tp.env)
        atomizer.atomize(unwrap_body(tp.nir))
        assert atomizer.atomized_ops >= 3
