"""Tests for the §5.3.2 neighborhood computation model.

"A more flexible model would allow the compiler to pipeline
communication and computation, or perform general neighborhood
computations directly, using the full register set to store intermediate
results and performing physical communications as required."
"""

import numpy as np
import pytest

from repro import nir
from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model
from repro.programs import ALL_KERNELS
from repro.programs.kernels import heat_source
from repro.programs.swe import swe_source
from repro.runtime import host as h

NB = CompilerOptions.neighborhood()


def run_nb(src, machine=None):
    exe = compile_source(src, NB)
    return exe, exe.run(machine or Machine(slicewise_model(64)))


class TestStructure:
    def test_cshift_stays_in_compute_block(self):
        src = ("double precision t(32,32), u(32,32)\n"
               "u = t + cshift(t, 1, 1)\nend")
        exe, _ = run_nb(src)
        # No separate communication phase; one node call with a halo arg.
        comm_ops = [op for op in exe.host_program.ops
                    if isinstance(op, h.CommMove)]
        assert not comm_ops
        call = [op for op in exe.host_program.ops
                if isinstance(op, h.NodeCall)][0]
        halos = [a for a in call.args if a.kind == "halo"]
        assert len(halos) == 1
        assert halos[0].shift == 1 and halos[0].axis == 1

    def test_standard_model_still_hoists(self):
        src = ("double precision t(32,32), u(32,32)\n"
               "u = t + cshift(t, 1, 1)\nend")
        exe = compile_source(src)
        comm_ops = [op for op in exe.host_program.ops
                    if isinstance(op, h.CommMove)]
        assert comm_ops

    def test_repeated_shift_shares_one_halo_stream(self):
        src = ("double precision t(32,32), u(32,32)\n"
               "u = cshift(t, 1, 1) * cshift(t, 1, 1) + cshift(t, 1, 1)\n"
               "end")
        exe, _ = run_nb(src)
        call = [op for op in exe.host_program.ops
                if isinstance(op, h.NodeCall)][0]
        halos = [a for a in call.args if a.kind == "halo"]
        assert len(halos) == 1

    def test_distinct_shifts_distinct_streams(self):
        src = ("double precision t(32,32), u(32,32)\n"
               "u = cshift(t, 1, 1) + cshift(t, -1, 1) + cshift(t, 1, 2)\n"
               "end")
        exe, _ = run_nb(src)
        call = [op for op in exe.host_program.ops
                if isinstance(op, h.NodeCall)][0]
        halos = [a for a in call.args if a.kind == "halo"]
        assert len(halos) == 3

    def test_double_shift_partially_hoisted(self):
        # The inner shift of cshift(cshift(t,1,1),1,2) still needs a
        # temporary; only plain whole-array shifts become halos.
        src = ("double precision t(16,16), u(16,16)\n"
               "u = cshift(cshift(t, 1, 1), 1, 2)\nend")
        exe, res = run_nb(src)
        ref = run_reference(parse_program(src))
        np.testing.assert_allclose(res.arrays["u"], ref.arrays["u"])

    def test_fusion_blocked_across_halo_of_written_array(self):
        # u is written, then v reads a halo of u: the two moves must not
        # fuse into one block (the halo must see the post-store u).
        src = ("double precision u(32,32), v(32,32)\n"
               "u = u + 1.0d0\n"
               "v = cshift(u, 1, 1)\n"
               "v = v * 2.0d0\nend")
        exe, res = run_nb(src)
        ref = run_reference(parse_program(src))
        np.testing.assert_allclose(res.arrays["v"], ref.arrays["v"])
        np.testing.assert_allclose(res.arrays["u"], ref.arrays["u"])


class TestCorrectness:
    @pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
    def test_all_kernels_match_reference(self, kernel):
        src = ALL_KERNELS[kernel]()
        _, res = run_nb(src)
        ref = run_reference(parse_program(src))
        for name, expected in ref.arrays.items():
            np.testing.assert_allclose(res.arrays[name], expected,
                                       rtol=1e-9, atol=1e-12)

    def test_swe_matches_reference(self):
        src = swe_source(n=16, itmax=3)
        _, res = run_nb(src)
        ref = run_reference(parse_program(src))
        for name in ("u", "v", "p"):
            np.testing.assert_allclose(res.arrays[name], ref.arrays[name],
                                       rtol=1e-9)

    def test_self_shift_update(self):
        # u = cshift(u) + u: the halo snapshots u before the store.
        src = ("integer u(16)\nforall (i=1:16) u(i) = i\n"
               "u = cshift(u, 1) + u\nend")
        _, res = run_nb(src)
        ref = run_reference(parse_program(src))
        np.testing.assert_array_equal(res.arrays["u"], ref.arrays["u"])


class TestPerformance:
    def test_heat_stencil_faster_with_halos(self):
        src = heat_source(256, 4)
        std = compile_source(src).run(Machine(slicewise_model()))
        nb = compile_source(src, NB).run(Machine(slicewise_model()))
        assert nb.stats.total_cycles < std.stats.total_cycles
        # The halo exchange moves only boundaries: less comm than full
        # CSHIFT copies.
        assert nb.stats.comm_cycles < std.stats.comm_cycles

    def test_halo_charges_communication(self):
        src = ("double precision t(64,64), u(64,64)\n"
               "u = cshift(t, 1, 1) + t\nend")
        _, res = run_nb(src, Machine(slicewise_model()))
        assert res.stats.comm_cycles > 0
