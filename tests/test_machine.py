"""Machine substrate tests: geometry, costs, PE executor, network."""

import math

import numpy as np
import pytest

from repro.machine import (
    Machine,
    SubgridStream,
    VectorExecutor,
    cycles_per_trip,
    fieldwise_model,
    flops_per_element,
    peak_gflops,
    slicewise_model,
)
from repro.machine.costs import cm5_model
from repro.machine.geometry import coordinate_array, make_geometry
from repro.machine import network
from repro.machine.stats import RunStats
from repro.peac import Imm, Instr, Mem, PReg, Routine, SReg, VReg
from repro.peac.isa import ParamSpec, CReg


class TestGeometry:
    def test_square_grid_balanced(self):
        g = make_geometry((1024, 1024), 2048)
        assert g.pes_used == 2048
        assert g.pe_grid in ((64, 32), (32, 64))
        assert g.vlen == 512

    def test_1d_layout(self):
        g = make_geometry((4096,), 64)
        assert g.pe_grid == (64,)
        assert g.subgrid == (64,)

    def test_small_array_leaves_pes_idle(self):
        g = make_geometry((8,), 64)
        assert g.pe_grid == (8,)
        assert g.vlen == 1

    def test_uneven_extent_ceil_division(self):
        g = make_geometry((100,), 16)
        assert g.subgrid == (7,)

    def test_n_pes_power_of_two_required(self):
        with pytest.raises(ValueError):
            make_geometry((8,), 3)

    def test_boundary_columns(self):
        g = make_geometry((64, 64), 16)
        axis = 0 if g.pe_grid[0] > 1 else 1
        assert g.boundary_columns(axis, 1) == 1
        assert g.boundary_columns(axis, 1000) == g.subgrid[axis]

    def test_no_boundary_when_axis_unsplit(self):
        g = make_geometry((8, 4096), 64)
        unsplit = 0 if g.pe_grid[0] == 1 else 1
        assert g.boundary_columns(unsplit, 1) == 0

    def test_hops(self):
        g = make_geometry((64,), 8)  # subgrid 8
        assert g.hops(0, 1) == 1
        assert g.hops(0, 20) == 3

    def test_coordinate_array_values(self):
        c = coordinate_array((3, 4), 2)
        assert c.shape == (3, 4)
        assert list(c[0]) == [1, 2, 3, 4]
        assert list(c[:, 0]) == [1, 1, 1]

    def test_coordinate_array_lo_step(self):
        c = coordinate_array((4,), 1, lo=2, step=3)
        assert list(c) == [2, 5, 8, 11]


class TestCosts:
    def test_paper_anchor_spill_pair(self):
        m = slicewise_model()
        assert m.instr.load + m.instr.store == 18  # the 18-cycle anchor
        assert 3 * m.instr.arith == 18             # == three vector ops

    def test_chained_operand_free(self):
        m = slicewise_model()
        chained = Instr("fsubv", (VReg(0), Mem(PReg(1)), VReg(1)))
        plain = Instr("fsubv", (VReg(0), VReg(2), VReg(1)))
        assert m.instruction_cycles(chained) == m.instruction_cycles(plain)

    def test_chaining_disabled_costs_load(self):
        m = slicewise_model().with_(chaining=False)
        chained = Instr("fsubv", (VReg(0), Mem(PReg(1)), VReg(1)))
        assert m.instruction_cycles(chained) == \
            m.instr.arith + m.instr.load

    def test_dual_issue_overlap(self):
        m = slicewise_model()
        load = Instr("flodv", (Mem(PReg(1)), VReg(2)))
        paired = Instr("fsubv", (VReg(0), VReg(1), VReg(3)), paired=load)
        assert m.instruction_cycles(paired) == \
            max(m.instr.arith, m.instr.load)

    def test_no_dual_issue_sums(self):
        m = slicewise_model().with_(dual_issue=False)
        load = Instr("flodv", (Mem(PReg(1)), VReg(2)))
        paired = Instr("fsubv", (VReg(0), VReg(1), VReg(3)), paired=load)
        assert m.instruction_cycles(paired) == \
            m.instr.arith + m.instr.load

    def test_fieldwise_has_no_chaining(self):
        m = fieldwise_model()
        assert not m.chaining and not m.dual_issue and not m.fma_supported

    def test_cm5_model_clock(self):
        assert cm5_model().clock_hz == 32.0e6

    def test_peak_gflops_order_of_magnitude(self):
        # CM/2 with chained multiply-adds peaked around 20 GF.
        assert 15 < peak_gflops() < 30


class TestVectorExecutor:
    def run1(self, instrs, pointers=None, scalars=None):
        ex = VectorExecutor()
        for preg, arr in (pointers or {}).items():
            ex.bind_pointer(PReg(preg), SubgridStream(arr))
        for sreg, val in (scalars or {}).items():
            ex.bind_scalar(SReg(sreg), val)
        r = Routine("t")
        r.body = instrs
        ex.run(r)
        return ex

    def test_load_compute_store(self):
        a = np.array([1.0, 2.0, 3.0])
        out = np.zeros(3)
        self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fmulv", (VReg(0), Imm(2.0), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(1)))),
        ], pointers={0: a, 1: out})
        assert list(out) == [2.0, 4.0, 6.0]

    def test_scalar_broadcast(self):
        a = np.array([1.0, 2.0])
        out = np.zeros(2)
        self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("faddv", (SReg(31), VReg(0), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(1)))),
        ], pointers={0: a, 1: out}, scalars={31: 10.0})
        assert list(out) == [11.0, 12.0]

    def test_chained_memory_operand(self):
        a = np.array([5.0, 7.0])
        b = np.array([2.0, 3.0])
        out = np.zeros(2)
        self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fsubv", (VReg(0), Mem(PReg(1)), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(2)))),
        ], pointers={0: a, 1: b, 2: out})
        assert list(out) == [3.0, 4.0]

    def test_fma(self):
        out = np.zeros(2)
        self.run1([
            Instr("fmovv", (Imm(3.0), VReg(0))),
            Instr("fmav", (VReg(0), Imm(2.0), Imm(1.0), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(0)))),
        ], pointers={0: out})
        assert list(out) == [7.0, 7.0]

    def test_select(self):
        mask = np.array([1.0, 0.0, 1.0])
        t = np.array([10.0, 10.0, 10.0])
        f = np.array([20.0, 20.0, 20.0])
        out = np.zeros(3)
        self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("flodv", (Mem(PReg(1)), VReg(1))),
            Instr("flodv", (Mem(PReg(2)), VReg(2))),
            Instr("fselv", (VReg(0), VReg(1), VReg(2), VReg(3))),
            Instr("fstrv", (VReg(3), Mem(PReg(3)))),
        ], pointers={0: mask, 1: t, 2: f, 3: out})
        assert list(out) == [10.0, 20.0, 10.0]

    def test_comparison_produces_mask(self):
        a = np.array([1.0, 5.0])
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fcgtv", (VReg(0), Imm(3.0), VReg(1))),
        ], pointers={0: a})
        assert list(ex.vregs[1]) == [False, True]

    def test_integer_division_truncates(self):
        a = np.array([-7, 7], dtype=np.int32)
        out = np.zeros(2, dtype=np.int32)
        self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("idivv", (VReg(0), Imm(2), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(1)))),
        ], pointers={0: a, 1: out})
        assert list(out) == [-3, 3]

    def test_dual_issue_reads_pre_state(self):
        # The paired load targets a register the main op reads: both
        # halves must see pre-instruction state.
        a = np.array([1.0, 1.0])
        b = np.array([100.0, 100.0])
        ex = self.run1([
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("faddv", (VReg(0), Imm(1.0), VReg(1)),
                  paired=Instr("flodv", (Mem(PReg(1)), VReg(0)))),
        ], pointers={0: a, 1: b})
        assert list(ex.vregs[1]) == [2.0, 2.0]  # used old aV0
        assert list(ex.vregs[0]) == [100.0, 100.0]  # then load landed

    def test_store_then_load_sees_update(self):
        a = np.array([1.0, 2.0])
        ex = self.run1([
            Instr("fmovv", (Imm(9.0), VReg(0))),
            Instr("fstrv", (VReg(0), Mem(PReg(0)))),
            Instr("flodv", (Mem(PReg(1)), VReg(1))),
        ], pointers={0: a, 1: a})
        assert list(ex.vregs[1]) == [9.0, 9.0]

    def test_undefined_register_read_raises(self):
        from repro.machine.pe import ExecutionError
        with pytest.raises(ExecutionError):
            self.run1([Instr("faddv", (VReg(0), VReg(1), VReg(2)))])

    def test_strided_view_write_back(self):
        base = np.zeros(8)
        view = base[1::2]
        self.run1([
            Instr("fmovv", (Imm(5.0), VReg(0))),
            Instr("fstrv", (VReg(0), Mem(PReg(0)))),
        ], pointers={0: view})
        assert list(base) == [0, 5, 0, 5, 0, 5, 0, 5]


class TestCyclesAndFlops:
    def routine(self):
        r = Routine("t")
        r.body = [
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("fmav", (VReg(0), SReg(31), Imm(1.0), VReg(1))),
            Instr("fstrv", (VReg(1), Mem(PReg(1)))),
        ]
        return r

    def test_cycles_per_trip(self):
        m = slicewise_model()
        r = self.routine()
        expected = m.instr.loop_overhead + m.instr.load + m.instr.fma \
            + m.instr.store
        assert cycles_per_trip(r, m) == expected

    def test_flops_per_element(self):
        assert flops_per_element(self.routine()) == 2  # one fma

    def test_paired_flops_counted(self):
        r = Routine("t")
        r.body = [Instr("faddv", (VReg(0), VReg(1), VReg(2)),
                        paired=Instr("flodv", (Mem(PReg(0)), VReg(3))))]
        assert flops_per_element(r) == 1


class TestNetwork:
    def test_cshift_local_when_axis_unsplit(self):
        m = slicewise_model()
        g = make_geometry((8, 4096), 64)
        unsplit_axis = 1 if g.pe_grid[0] == 1 else 2
        local = network.cshift_cycles(m, g, unsplit_axis, 1)
        split_axis = 3 - unsplit_axis
        remote = network.cshift_cycles(m, g, split_axis, 1)
        assert local < remote

    def test_cshift_cost_grows_with_shift(self):
        m = slicewise_model()
        g = make_geometry((4096,), 64)
        assert network.cshift_cycles(m, g, 1, 1) \
            < network.cshift_cycles(m, g, 1, 16)

    def test_router_dearer_than_grid(self):
        m = slicewise_model()
        g = make_geometry((4096,), 64)
        assert network.router_cycles(m, g) \
            > network.cshift_cycles(m, g, 1, 1)

    def test_reduction_logarithmic_tree(self):
        m = slicewise_model()
        g64 = make_geometry((4096,), 64)
        g1024 = make_geometry((65536,), 1024)
        r64 = network.reduction_cycles(m, g64)
        r1024 = network.reduction_cycles(m, g1024)
        # Same vlen (64), deeper tree.
        assert r1024 - r64 == m.hop_cycles * (10 - 6)


class TestMachine:
    def test_alloc_and_view(self):
        m = Machine(slicewise_model(64))
        m.alloc("a", (8, 8), np.dtype(np.float64))
        m.set_array("a", np.arange(64, dtype=float).reshape(8, 8))
        v = m.view("a", ((2, 6, 2), (1, 8, 1)))
        assert v.shape == (3, 8)

    def test_double_alloc_rejected(self):
        m = Machine(slicewise_model(64))
        m.alloc("a", (4,), np.dtype(np.int32))
        with pytest.raises(Exception):
            m.alloc("a", (4,), np.dtype(np.int32))

    def test_call_routine_accounting(self):
        m = Machine(slicewise_model(64))
        m.alloc("a", (64,), np.dtype(np.float64))
        r = Routine("t")
        r.body = [
            Instr("fmovv", (Imm(1.0), VReg(0))),
            Instr("fstrv", (VReg(0), Mem(PReg(0)))),
        ]
        r.params = [
            ParamSpec("subgrid", "a.w0", PReg(0)),
            ParamSpec("vlen", "vlen", CReg(2)),
        ]
        m.call_routine(r, {"a.w0": m.view("a", None)}, (64,))
        assert m.stats.node_calls == 1
        assert m.stats.ififo_pushes == 2
        assert m.stats.node_cycles > 0
        assert np.all(m.home("a").data == 1.0)

    def test_missing_argument_raises(self):
        from repro.machine import MachineError
        m = Machine(slicewise_model(64))
        r = Routine("t")
        r.params = [ParamSpec("subgrid", "x", PReg(0))]
        with pytest.raises(MachineError):
            m.call_routine(r, {}, (8,))

    def test_coord_subgrid_cached(self):
        m = Machine(slicewise_model(64))
        c1 = m.coord_subgrid((8, 8), 1, None)
        cycles_after_first = m.stats.node_cycles
        c2 = m.coord_subgrid((8, 8), 1, None)
        assert c1 is c2
        assert m.stats.node_cycles == cycles_after_first


class TestStats:
    def test_gflops(self):
        s = RunStats(node_cycles=7_000_000, flops=14_000_000)
        assert s.gflops(7.0e6) == pytest.approx(0.014)

    def test_merge(self):
        a = RunStats(node_cycles=10, flops=5, per_routine={"x": 10})
        b = RunStats(comm_cycles=3, flops=2, per_routine={"x": 1, "y": 2})
        a.merge(b)
        assert a.total_cycles == 13
        assert a.flops == 7
        assert a.per_routine == {"x": 11, "y": 2}

    def test_breakdown_sums_to_one(self):
        s = RunStats(node_cycles=50, call_cycles=25, comm_cycles=20,
                     host_cycles=5)
        assert math.isclose(sum(s.breakdown().values()), 1.0)
