"""PEAC ISA and assembler tests (Figure 12 syntax)."""

import pytest

from repro.peac import (
    NUM_PREGS,
    NUM_VREGS,
    CReg,
    Imm,
    Instr,
    Mem,
    ParamSpec,
    PeacError,
    PReg,
    Routine,
    SReg,
    VReg,
    format_instr,
    format_routine,
    parse_instr,
    parse_routine,
)


class TestOperands:
    def test_register_ranges(self):
        VReg(NUM_VREGS - 1)
        with pytest.raises(PeacError):
            VReg(NUM_VREGS)
        with pytest.raises(PeacError):
            PReg(NUM_PREGS)
        with pytest.raises(PeacError):
            SReg(-1)

    def test_operand_syntax(self):
        assert str(VReg(3)) == "aV3"
        assert str(SReg(28)) == "aS28"
        assert str(Mem(PReg(7), 0, 1)) == "[aP7+0]1++"
        assert str(CReg(2)) == "ac2"
        assert str(Imm(5)) == "#5"

    def test_spill_mem_no_increment(self):
        assert str(Mem(PReg(15), 0, 0)) == "[aP15+0]0++"


class TestInstr:
    def test_unknown_opcode(self):
        with pytest.raises(PeacError):
            Instr("fzapv", (VReg(0), VReg(1)))

    def test_arity_checked(self):
        with pytest.raises(PeacError):
            Instr("faddv", (VReg(0), VReg(1)))

    def test_one_memory_operand_max(self):
        ok = Instr("faddv", (Mem(PReg(0)), VReg(1), VReg(2)))
        assert ok.has_chained_mem
        with pytest.raises(PeacError):
            Instr("faddv", (Mem(PReg(0)), Mem(PReg(1)), VReg(2)))

    def test_paired_must_be_memory(self):
        load = Instr("flodv", (Mem(PReg(1)), VReg(2)))
        Instr("fsubv", (VReg(0), VReg(1), VReg(3)), paired=load)
        with pytest.raises(PeacError):
            Instr("fsubv", (VReg(0), VReg(1), VReg(3)),
                  paired=Instr("faddv", (VReg(0), VReg(1), VReg(2))))

    def test_pairs_cannot_nest(self):
        load = Instr("flodv", (Mem(PReg(1)), VReg(2)))
        paired = Instr("fstrv", (VReg(0), Mem(PReg(2))), paired=load)
        with pytest.raises(PeacError):
            Instr("fsubv", (VReg(0), VReg(1), VReg(3)), paired=paired)

    def test_dest_and_sources(self):
        i = Instr("fmav", (VReg(0), VReg(1), VReg(2), VReg(3)))
        assert i.dest == VReg(3)
        assert i.sources == (VReg(0), VReg(1), VReg(2))
        store = Instr("fstrv", (VReg(0), Mem(PReg(1))))
        assert store.dest is None

    def test_kind_classification(self):
        assert Instr("fdivv", (VReg(0), VReg(1), VReg(2))).kind == "div"
        assert Instr("flodv", (Mem(PReg(0)), VReg(1))).kind == "load"
        assert Instr("fmav", (VReg(0), VReg(1), VReg(2), VReg(3))).kind \
            == "fma"


class TestAssembler:
    FIGURE12_NAIVE = """Pk51vs1_
    flodv [aP7+0]1++ aV3
    flodv [aP4+0]1++ aV2
    fsubv aV3 aV2 aV1
    fmulv aS28 aV1 aV3
    flodv [aP8+0]1++ aV4
    flodv [aP3+0]1++ aV2
    fsubv aV4 aV2 aV2
    fmulv aS29 aV2 aV4
    fsubv aV3 aV4 aV1
    flodv [aP5+0]1++ aV2
    flodv [aP2+0]1++ aV3
    faddv aV2 aV3 aV3
    fdivv aV1 aV3 aV3
    fstrv aV3 [aP6+0]1++
    jnz ac2 Pk51vs1_"""

    def test_parse_figure12_naive(self):
        routine = parse_routine(self.FIGURE12_NAIVE)
        assert routine.name == "Pk51vs1"
        assert routine.instruction_count() == 14

    def test_roundtrip_figure12(self):
        routine = parse_routine(self.FIGURE12_NAIVE)
        text = format_routine(routine)
        again = parse_routine(text)
        assert again.body == routine.body

    def test_parse_dual_issue(self):
        i = parse_instr("fsubv aV3 aV4 aV1, flodv [aP5+0]1++ aV2")
        assert i.op == "fsubv"
        assert i.paired is not None and i.paired.op == "flodv"

    def test_format_dual_issue(self):
        load = Instr("flodv", (Mem(PReg(5)), VReg(2)))
        i = Instr("fsubv", (VReg(3), VReg(4), VReg(1)), paired=load)
        assert format_instr(i) == \
            "fsubv aV3 aV4 aV1, flodv [aP5+0]1++ aV2"

    def test_parse_chained_memory_operand(self):
        i = parse_instr("fsubv aV3 [aP4+0]1++ aV1")
        assert i.has_chained_mem

    def test_parse_immediate(self):
        i = parse_instr("imulv #5 aV0 aV0")
        assert Imm(5.0) in i.operands

    def test_jnz_label_must_match(self):
        text = "Pk1vs1_\n    flodv [aP0+0]1++ aV0\n    jnz ac2 Other_"
        with pytest.raises(PeacError):
            parse_routine(text)

    def test_empty_routine_rejected(self):
        with pytest.raises(PeacError):
            parse_routine("")

    def test_comments_stripped(self):
        i = parse_instr("faddv aV0 aV1 aV2 ; add them")
        assert i.op == "faddv"


class TestRoutine:
    def test_memory_refs_counts_all_forms(self):
        r = Routine("t")
        r.body = [
            Instr("flodv", (Mem(PReg(0)), VReg(0))),
            Instr("faddv", (VReg(0), Mem(PReg(1)), VReg(1)),
                  paired=Instr("flodv", (Mem(PReg(2)), VReg(2)))),
            Instr("fstrv", (VReg(1), Mem(PReg(3)))),
        ]
        assert r.memory_refs() == 4
        assert r.instruction_count() == 3

    def test_param_kind_validated(self):
        with pytest.raises(PeacError):
            ParamSpec(kind="banana", name="x", reg=PReg(0))

    def test_label(self):
        assert Routine("Pk1vs1").label == "Pk1vs1_"
