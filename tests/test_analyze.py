"""``repro analyze``: race detector, comm auditor, the differential
oracle (detector verdicts vs the real engines), static-vs-runtime comm
reconciliation, and the CLI/service surfaces."""

from __future__ import annotations

import glob
import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.analyze import AnalyzeResult, analyze_file, analyze_source
from repro.analysis.racecheck import masks_disjoint
from repro.driver import cli
from repro.driver.compiler import compile_source
from repro.machine import Machine, slicewise_model

N = 8

CLEAN = f"""
program clean
  integer, parameter :: n = {N}
  real :: a(n), b(n)
  b = 1.0
  a(1:n) = b(1:n)
  print *, a
end program clean
"""

OVERLAP = f"""
program overlap
  integer, parameter :: n = {N}
  real :: a(n)
  a = 1.0
  a(2:n) = a(1:n-1)
  print *, a
end program overlap
"""


def race_codes(result: AnalyzeResult) -> list[str]:
    return [d.code for d in result.diagnostics
            if d.code.startswith("R6")]


# ---------------------------------------------------------------------------
# Race detector verdicts (the acceptance pair and friends)
# ---------------------------------------------------------------------------


class TestRaceDetector:
    def test_flags_overlapping_self_read(self):
        assert "R601" in race_codes(analyze_source(OVERLAP))

    def test_passes_disjoint_copy(self):
        assert race_codes(analyze_source(CLEAN)) == []

    def test_flags_self_shift(self):
        src = OVERLAP.replace("a(2:n) = a(1:n-1)", "a = cshift(a, 1)")
        assert "R601" in race_codes(analyze_source(src))

    def test_masked_self_shift_is_r602(self):
        result = analyze_file("tests/lint_cases/race_masked.f90")
        assert "R602" in race_codes(result)

    def test_write_write_race_is_r603(self):
        result = analyze_file("tests/lint_cases/race_writewrite.f90")
        assert "R603" in race_codes(result)

    def test_disjoint_masks_do_not_race(self):
        # The life.f90 pattern: same-expression equality against two
        # different constants can never hold at the same point.
        result = analyze_source("""
program ok
  integer, parameter :: n = 8
  integer :: g(n), c(n)
  g = 1
  c = 2
  where (c == 3) g = 1
  where (c == 2) g = 0
  print *, g
end program ok
""")
        assert race_codes(result) == []

    def test_examples_are_race_free(self):
        for path in sorted(glob.glob("examples/*.f90")):
            assert race_codes(analyze_file(path)) == [], path


class TestMasksDisjoint:
    def test_negation_is_disjoint(self):
        from repro import nir
        m = nir.Binary(nir.BinOp.GT, nir.SVar("x"), nir.int_const(0))
        assert masks_disjoint(m, nir.Unary(nir.UnOp.NOT, m))
        assert masks_disjoint(nir.Unary(nir.UnOp.NOT, m), m)

    def test_different_constants_are_disjoint(self):
        from repro import nir
        eq = lambda c: nir.Binary(nir.BinOp.EQ, nir.SVar("x"),
                                  nir.int_const(c))
        assert masks_disjoint(eq(2), eq(3))
        assert not masks_disjoint(eq(2), eq(2))

    def test_unrelated_masks_are_not_disjoint(self):
        from repro import nir
        a = nir.Binary(nir.BinOp.GT, nir.SVar("x"), nir.int_const(0))
        b = nir.Binary(nir.BinOp.LT, nir.SVar("y"), nir.int_const(9))
        assert not masks_disjoint(a, b)


# ---------------------------------------------------------------------------
# Differential oracle: detector verdict vs the real engines
# ---------------------------------------------------------------------------


PREAMBLE = [f"integer a({N}), b({N})",
            f"forall (i=1:{N}) a(i) = i",
            f"forall (i=1:{N}) b(i) = 2*i + 1"]


def initial_arrays() -> dict[str, np.ndarray]:
    i = np.arange(1, N + 1, dtype=np.int64)
    return {"a": i.copy(), "b": 2 * i + 1}


def render(stmts) -> str:
    lines = list(PREAMBLE)
    for tgt, tlo, src, slo, length, scale, add in stmts:
        lines.append(
            f"{tgt}({tlo}:{tlo + length - 1}) = "
            f"{scale}*{src}({slo}:{slo + length - 1}) + {add}")
    lines.append("end")
    return "\n".join(lines)


def serialized(stmts) -> dict[str, np.ndarray]:
    """Statement-serialized in-place element loop — the semantics a
    scalarizing compiler without temporaries would give the program."""
    arrs = initial_arrays()
    for tgt, tlo, src, slo, length, scale, add in stmts:
        t, s = arrs[tgt], arrs[src]
        for k in range(length):
            t[tlo - 1 + k] = scale * s[slo - 1 + k] + add
    return arrs


def vector(source: str, exec_mode: str) -> dict[str, np.ndarray]:
    exe = compile_source(source)
    res = exe.run(Machine(slicewise_model(64), exec_mode=exec_mode))
    return {k: np.asarray(res.arrays[k]) for k in ("a", "b")}


@st.composite
def section_stmts(draw):
    stmts = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        length = draw(st.integers(min_value=2, max_value=N - 1))
        tgt = draw(st.sampled_from(["a", "b"]))
        src = draw(st.sampled_from(["a", "b"]))
        tlo = draw(st.integers(min_value=1, max_value=N - length + 1))
        slo = draw(st.integers(min_value=1, max_value=N - length + 1))
        scale = draw(st.integers(min_value=1, max_value=3))
        add = draw(st.integers(min_value=0, max_value=5))
        stmts.append((tgt, tlo, src, slo, length, scale, add))
    return stmts


@settings(max_examples=30, deadline=None)
@given(section_stmts())
def test_detector_clean_means_vector_equals_serialized(stmts):
    source = render(stmts)
    result = analyze_source(source)
    assert result.internal_error is None
    if race_codes(result):
        return  # flagged programs may legitimately diverge
    fast = vector(source, "fast")
    interp = vector(source, "interp")
    serial = serialized(stmts)
    for name in ("a", "b"):
        np.testing.assert_array_equal(fast[name], interp[name])
        np.testing.assert_array_equal(fast[name], serial[name])


def test_flagged_seed_case_really_diverges():
    # a(2:8) = 1*a(1:7) + 0 — the acceptance criterion's recurrence.
    stmts = [("a", 2, "a", 1, 7, 1, 0)]
    source = render(stmts)
    assert race_codes(analyze_source(source)) == ["R601"]
    fast = vector(source, "fast")
    interp = vector(source, "interp")
    serial = serialized(stmts)
    np.testing.assert_array_equal(fast["a"], interp["a"])
    # Vector semantics shift; the serialized loop smears a(1) across.
    assert not np.array_equal(fast["a"], serial["a"])
    assert np.array_equal(serial["a"][1:],
                          np.full(N - 1, serial["a"][0]))


def test_clean_seed_case_agrees_everywhere():
    stmts = [("a", 1, "b", 1, N, 1, 0)]
    source = render(stmts)
    assert race_codes(analyze_source(source)) == []
    np.testing.assert_array_equal(vector(source, "fast")["a"],
                                  serialized(stmts)["a"])


# ---------------------------------------------------------------------------
# Static communication audit vs the runtime meters
# ---------------------------------------------------------------------------


class TestCommReconciliation:
    def test_swe_static_comm_matches_runtime_exactly(self):
        result = analyze_file("examples/swe.f90")
        comm = result.comm
        assert comm is not None and comm["exact"]
        # The acceptance criterion: CSHIFT traffic is shift-class, and
        # nothing was misclassified onto the router.
        assert comm["entries"], "swe must have communication entries"
        assert all(e["class"] == "shift" for e in comm["entries"])
        assert comm["by_class"]["router"] == 0

        from repro.targets import build_machine
        exe = compile_source(open("examples/swe.f90").read())
        res = exe.run(build_machine("cm2"))
        assert comm["comm_cycles"] == res.stats.comm_cycles

    def test_heat_static_comm_matches_runtime_exactly(self):
        result = analyze_file("examples/heat.f90")
        from repro.targets import build_machine
        exe = compile_source(open("examples/heat.f90").read())
        res = exe.run(build_machine("cm2"))
        assert result.comm["comm_cycles"] == res.stats.comm_cycles

    def test_gather_is_router_class(self):
        result = analyze_file("tests/lint_cases/comm_router.f90")
        comm = result.comm
        assert comm["by_class"]["router"] > 0
        assert any(e["kind"] == "gather" for e in comm["entries"])

    def test_cost_model_selection_changes_totals(self):
        src = open("examples/heat.f90").read()
        cm2 = analyze_source(src)
        cm5 = analyze_source(src, target="cm5")
        assert cm2.comm["model"] != cm5.comm["model"]
        assert cm2.comm["comm_cycles"] != cm5.comm["comm_cycles"]

    def test_loop_trips_multiply(self):
        result = analyze_source("""
program trips
  integer, parameter :: n = 8
  real :: a(n)
  integer :: it
  a = 1.0
  do it = 1, 5
    a = cshift(a, 1)
  end do
  print *, a
end program trips
""")
        shifts = [e for e in result.comm["entries"]
                  if e["kind"] == "cshift"]
        assert shifts and shifts[0]["trips"] == 5
        assert result.comm["exact"]

    def test_conditional_comm_is_inexact(self):
        result = analyze_source("""
program maybe
  integer, parameter :: n = 8
  real :: a(n)
  integer :: c
  a = 1.0
  c = 1
  if (c > 0) then
    a = cshift(a, 1)
  end if
  print *, a
end program maybe
""")
        assert result.comm["exact"] is False


# ---------------------------------------------------------------------------
# Exit-code contract and output surfaces
# ---------------------------------------------------------------------------


class TestAnalyzeContract:
    def test_clean_is_zero(self):
        assert analyze_source(CLEAN).exit_code() == 0

    def test_findings_are_one_two_under_strict(self):
        r = analyze_source(OVERLAP)
        assert r.exit_code() == 1
        assert r.exit_code(strict=True) == 2

    def test_lint_errors_are_two_and_skip_analysis(self):
        r = analyze_source("program p\n  a = = 1\nend program p\n")
        assert r.exit_code() == 2
        assert r.comm is None and r.dataflow is None

    def test_internal_error_is_two(self):
        r = analyze_source(CLEAN, target="not-a-target")
        assert r.internal_error is not None
        assert r.exit_code() == 0 or r.exit_code() == 2
        assert r.exit_code() == 2

    def test_never_raises_on_garbage(self):
        for source in ("", "@@@", "program p", "end", "\x00\x01"):
            assert isinstance(analyze_source(source), AnalyzeResult)

    def test_examples_are_analyze_clean(self):
        # The CI analyze-gate: no unexpected R/C diagnostic in examples.
        for path in sorted(glob.glob("examples/*.f90")):
            result = analyze_file(path)
            assert result.internal_error is None, path
            assert result.exit_code() == 0, (
                path, [d.code for d in result.diagnostics])


class TestAnalyzeCli:
    def test_clean_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.f90"
        f.write_text(CLEAN)
        assert cli.main(["analyze", str(f)]) == 0
        assert "static comm" in capsys.readouterr().out

    def test_findings_exit_one_strict_two(self, tmp_path):
        f = tmp_path / "overlap.f90"
        f.write_text(OVERLAP)
        assert cli.main(["analyze", str(f)]) == 1
        assert cli.main(["analyze", "--strict", str(f)]) == 2

    def test_unknown_target_exits_two(self, tmp_path, capsys):
        f = tmp_path / "clean.f90"
        f.write_text(CLEAN)
        assert cli.main(["analyze", "--target", "nope", str(f)]) == 2
        assert "internal error" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        rc = cli.main(["analyze", "--format=json",
                       "tests/lint_cases/comm_router.f90"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["comm"]["by_class"]["router"] > 0
        assert payload["dataflow"]["statements"] > 0
        assert any(d["code"] == "C702" for d in payload["diagnostics"])

    def test_lint_analyze_flag_folds_in_r_codes(self, tmp_path, capsys):
        f = tmp_path / "overlap.f90"
        f.write_text(OVERLAP)
        assert cli.main(["lint", "--analyze", "--format=json",
                         str(f)]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "R601" in codes and "W202" in codes

    def test_pes_override(self, tmp_path, capsys):
        f = tmp_path / "clean.f90"
        f.write_text(CLEAN)
        cli.main(["analyze", "--format=json", "--pes", "64", str(f)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["comm"]["n_pes"] == 64


def test_service_analyze_op_matches_cli_json():
    from repro.service.jobs import execute_request

    path = "examples/swe.f90"
    with open(path) as f:
        source = f.read()
    svc = execute_request({"op": "analyze", "source": source,
                           "file": path})
    assert svc["ok"]
    report = {k: v for k, v in svc.items() if k not in ("ok", "op")}

    result = analyze_file(path)
    local = dict(result.to_dict(), exit_code=result.exit_code())
    assert json.dumps(report, sort_keys=True) \
        == json.dumps(local, sort_keys=True)


def test_service_analyze_strict():
    from repro.service.jobs import execute_request

    r = execute_request({"op": "analyze", "source": OVERLAP,
                         "strict": True})
    assert r["exit_code"] == 2
    assert any(d["code"] == "R601" for d in r["diagnostics"])
