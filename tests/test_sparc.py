"""SPARC assembly rendering of the host (FE/NIR) program."""

import re

from repro.driver.compiler import CompilerOptions, compile_source
from repro.runtime.sparc import render_sparc


def render(src, options=None):
    return render_sparc(compile_source(src, options).host_program)


class TestSparcRendering:
    def test_prologue_epilogue(self):
        text = render("integer x\nx = 1\nend")
        assert ".global _main" in text
        assert "save %sp" in text
        assert text.rstrip().endswith("restore")

    def test_allocation_calls_runtime(self):
        text = render("integer a(8)\na = 1\nend")
        assert "_CMRT_allocate_array" in text

    def test_node_dispatch_pushes_ififo(self):
        text = render("integer a(8)\na = a + 1\nend")
        assert "_CM_push_ififo" in text
        assert re.search(r"call _CMPE_Pk\d+vs1", text)
        # The vlen push precedes the dispatch.
        assert text.index("set vlen") < text.index("_CMPE_")

    def test_communication_calls(self):
        text = render("integer a(8), b(8)\nb = cshift(a, 1)\nend")
        assert "_CMRT_cshift" in text

    def test_reduction_call_and_store(self):
        text = render("integer a(8)\ninteger s\na = 1\ns = sum(a)\nend")
        assert "_CMRT_reduce_sum" in text

    def test_loop_structure(self):
        text = render("integer x\ninteger i\nx = 0\n"
                      "do i = 1, 5\nx = x + i\nend do\nend")
        assert re.search(r"\.Lloop\d+:", text)
        assert "cmp %o0, %o1" in text
        assert re.search(r"ba \.Lloop\d+", text)

    def test_if_structure(self):
        text = render("integer x\nx = 1\n"
                      "if (x > 0) then\nx = 2\nelse\nx = 3\nendif\nend")
        assert re.search(r"bz \.Lelse\d+", text)
        assert re.search(r"\.Lendif\d+:", text)

    def test_while_structure(self):
        text = render("integer x\nx = 0\n"
                      "do while (x < 3)\nx = x + 1\nend do\nend")
        assert re.search(r"\.Lwhile\d+:", text)
        assert "tst %o0" in text

    def test_scalar_memory_to_memory_model(self):
        # Every scalar op loads from and stores to the frame.
        text = render("integer x, y\nx = 1\ny = x + 2\nend")
        assert "ld [%fp" in text
        assert "st %o0, [%fp" in text

    def test_halo_arguments_rendered(self):
        text = render("double precision t(8,8), u(8,8)\n"
                      "u = t + cshift(t, 1, 1)\nend",
                      CompilerOptions.neighborhood())
        assert "_CMRT_halo_exchange" in text

    def test_labels_unique(self):
        text = render("integer x\ninteger i, j\nx = 0\n"
                      "do i = 1, 2\nx = x + 1\nend do\n"
                      "do j = 1, 2\nx = x + 1\nend do\nend")
        labels = re.findall(r"^(\.L\w+):", text, re.M)
        assert len(labels) == len(set(labels))

    def test_unary_library_call(self):
        text = render("double precision x\nx = sin(0.5d0)\nend")
        assert "_lib_sin" in text
