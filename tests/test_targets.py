"""The target registry: resolution, validation, CLI/service wiring, and
cm2-vs-cm5 end-to-end equivalence.

The paper's retargeting claim (§5.3.1) is that the CM/5 compiler reuses
the CM/2 structure — here that means both targets are one registry
record apart, and (since the node semantics are identical) produce
bit-identical output arrays on the same programs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.driver.cli import main as cli_main
from repro.driver.compiler import CompilerOptions, compile_source
from repro.service.jobs import build_machine, build_options, execute_request
from repro.targets import (
    Target,
    TargetModelMismatchError,
    UnknownModelError,
    UnknownTargetError,
    build_machine as registry_build_machine,
    get_model_factory,
    get_target,
    register_target,
    resolve_model,
    target_names,
)

from .conftest import lower  # noqa: F401  (shared fixtures import path)

TINY = "integer a(8)\na = 1\na = a + 2\nend"

PROGRAMS = [
    TINY,
    "real x(4,4), y(4,4)\ny = cshift(x + 1.5, 1, 2) * 2.0\nend",
    """
integer i
real a(8), b(8)
do i = 1, 8
  a(i) = i * 1.5
end do
b = cshift(a, 1)
where (b > 6.0)
  b = b - 6.0
end where
end
""",
]


# -- registry ---------------------------------------------------------------


class TestTargetRegistry:
    def test_builtin_targets(self):
        assert target_names() == ["cm2", "cm5", "host"]

    def test_records_resolve_lazily_to_backends(self):
        from repro.backend.cm2.partition import Cm2Compiler
        from repro.backend.cm5.compiler import Cm5Compiler

        assert get_target("cm2").compiler() is Cm2Compiler
        assert get_target("cm5").compiler() is Cm5Compiler
        assert get_target("cm2").compiler().target_name == "cm2"
        assert get_target("cm5").compiler().target_name == "cm5"

    def test_unknown_target_is_typed_valueerror(self):
        with pytest.raises(UnknownTargetError) as exc:
            get_target("cm3")
        assert isinstance(exc.value, ValueError)
        assert "cm2" in str(exc.value) and "cm5" in str(exc.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_target(Target(
                name="cm2", description="dup",
                compiler_loader=lambda: object, models=("slicewise",)))

    def test_registering_with_unknown_model_rejected(self):
        with pytest.raises(UnknownModelError):
            register_target(Target(
                name="cm6", description="bad",
                compiler_loader=lambda: object, models=("warpwise",)))
        assert "cm6" not in target_names()


class TestModelResolution:
    def test_defaults_come_from_the_target(self):
        assert resolve_model("cm2") == "slicewise"
        assert resolve_model("cm5") == "cm5"

    def test_explicit_compatible_model_passes_through(self):
        assert resolve_model("cm2", "fieldwise") == "fieldwise"

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError):
            resolve_model("cm2", "warpwise")
        with pytest.raises(UnknownModelError):
            get_model_factory("warpwise")

    def test_target_model_mismatch_raises(self):
        with pytest.raises(TargetModelMismatchError) as exc:
            resolve_model("cm5", "slicewise")
        assert "cm5" in str(exc.value)

    def test_build_machine_defaults(self):
        m2 = registry_build_machine("cm2", pes=64)
        assert m2.model.name == "cm2-slicewise" and m2.model.n_pes == 64
        m5 = registry_build_machine("cm5", pes=64)
        assert m5.model.name == "cm5"

    def test_executable_default_machine_matches_target(self):
        exe = compile_source(TINY, CompilerOptions(target="cm5"))
        result = exe.run()
        assert result.machine.model.name == "cm5"


# -- service wiring ---------------------------------------------------------


class TestServiceResolution:
    def test_unknown_model_is_an_error_response_not_slicewise(self):
        response = execute_request(
            {"op": "run", "source": TINY, "model": "warpwise"})
        assert not response["ok"]
        assert response["error"]["type"] == "UnknownModelError"

    def test_unknown_target_is_an_error_response(self):
        response = execute_request(
            {"op": "compile", "source": TINY,
             "options": {"target": "cm3"}})
        assert not response["ok"]
        assert response["error"]["type"] == "UnknownTargetError"

    def test_model_defaults_from_request_target(self):
        response = execute_request(
            {"op": "run", "source": TINY, "pes": 64,
             "options": {"target": "cm5"}})
        assert response["ok"], response
        assert response["target"] == "cm5"
        assert response["model"] == "cm5"

    def test_mismatched_model_is_an_error_response(self):
        response = execute_request(
            {"op": "run", "source": TINY, "model": "slicewise",
             "options": {"target": "cm5"}})
        assert not response["ok"]
        assert response["error"]["type"] == "TargetModelMismatchError"

    def test_build_helpers_resolve_through_registry(self):
        assert build_options({"target": "cm5"}).target == "cm5"
        machine = build_machine({"pes": 64}, target="cm2")
        assert machine.model.name == "cm2-slicewise"

    def test_run_response_carries_pipeline_trace(self):
        response = execute_request({"op": "run", "source": TINY, "pes": 64})
        assert response["ok"]
        names = [p["name"] for p in response["pipeline"]["passes"]]
        assert names == ["racecheck", "promote", "normalize", "pad_masks",
                         "dse", "block", "fuse_exec", "recheck",
                         "commaudit"]


# -- CLI wiring -------------------------------------------------------------

SWE_PATH = "examples/swe.f90"


class TestCliResolution:
    def test_list_passes(self, capsys):
        assert cli_main(["run", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for name in ("promote", "normalize", "pad_masks", "dse", "block",
                     "recheck"):
            assert name in out

    def test_dump_after(self, tmp_path, capsys):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        assert cli_main(["compile", str(f),
                         "--dump-after", "normalize"]) == 0
        out = capsys.readouterr().out
        assert "NIR after pass 'normalize'" in out
        assert "MOVE" in out

    def test_dump_after_unknown_pass_fails(self, tmp_path):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        assert cli_main(["compile", str(f), "--dump-after", "bogus"]) == 1

    def test_model_defaults_from_target(self, tmp_path):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        stats = tmp_path / "stats.json"
        assert cli_main(["run", str(f), "--target", "cm5", "--pes", "64",
                         "--stats-json", str(stats)]) == 0
        payload = json.loads(stats.read_text())
        assert payload["target"] == "cm5"
        assert payload["model"] == "cm5"
        assert payload["pipeline"]["passes"]

    def test_model_target_mismatch_fails(self, tmp_path):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        assert cli_main(["run", str(f), "--target", "cm5",
                         "--model", "slicewise"]) == 1

    def test_missing_file_still_an_error(self):
        assert cli_main(["run"]) == 2


# -- cm2 vs cm5 end-to-end equivalence --------------------------------------


def _arrays(source: str, target: str) -> dict[str, np.ndarray]:
    exe = compile_source(source, CompilerOptions(target=target))
    return exe.run(registry_build_machine(target, pes=64)).arrays


class TestTargetEquivalence:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_small_programs_bit_identical(self, source):
        cm2 = _arrays(source, "cm2")
        cm5 = _arrays(source, "cm5")
        assert set(cm2) == set(cm5)
        for name, data in cm2.items():
            np.testing.assert_array_equal(
                data, cm5[name],
                err_msg=f"array {name!r} differs between targets")

    def test_swe_bit_identical(self):
        with open(SWE_PATH) as f:
            src = f.read().replace("n = 64", "n = 16")
        cm2 = _arrays(src, "cm2")
        cm5 = _arrays(src, "cm5")
        for name in ("u", "v", "p"):
            np.testing.assert_array_equal(
                cm2[name], cm5[name],
                err_msg=f"SWE array {name!r} differs between targets")
