"""Cross-routine execution-plan fusion: equivalence, caching, eviction.

The fused engine (``exec_mode="fused"``) must be observationally
identical to the fast engine and the interpreter oracle: bit-identical
arrays for every program, identical invariant counters (flops, elements,
comm, reductions, dispatch counts), and a total cycle count that is
never *higher* than fast — fusion only removes modeled dispatch and
argument-push work.  These tests pin that contract with hypothesis
programs across both targets, mixed-shape fusability edges, mega-kernel
cache reuse and eviction on plan invalidation, the native-C/Python
kernel agreement, and every fusion kill switch (transform option,
target flag, executor argument).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.driver.compiler import CompilerOptions, compile_source
from repro.machine import get_plan, invalidate_plan
from repro.machine import execplan
from repro.machine.ckernel import _compiler
from repro.programs.kernels import heat_source
from repro.programs.swe import swe_source
from repro.targets import build_machine
from repro.transform import Options as TransformOptions

ENGINES = ("interp", "fast", "fused")

#: Counters fusion must not change: it elides dispatch/push/loop
#: cycles (so ``node_calls``/``call_cycles`` legitimately shrink) but
#: never the useful work, the traffic, or the host's share.
INVARIANTS = ("flops", "elements_computed", "comm_ops",
              "comm_cycles", "reductions", "host_cycles")

# Alternating same-flat-size (a: 4x4 = b: 16) and odd-size (c: 9)
# statements: adjacent a/b calls fuse across ranks, c breaks trips.
MIXED_SHAPES = """\
double precision a(4, 4), b(16), c(9)
forall (i=1:4, j=1:4) a(i, j) = i * 2.0d0 + j
forall (i=1:16) b(i) = i * 0.5d0
forall (i=1:9) c(i) = i * 0.25d0
a = a * 2.0d0 + 1.0d0
b = b * 3.0d0 - 2.0d0
c = c * c
a = a - 1.5d0
b = b + 0.5d0
end
"""


def run_engines(exe, target="cm2"):
    """{engine: (RunResult, Machine)} for one executable."""
    out = {}
    for mode in ENGINES:
        machine = build_machine(target, exec_mode=mode)
        out[mode] = (exe.run(machine=machine), machine)
    return out


def assert_contract(out):
    """The three-engine contract over one program's results."""
    ref = out["interp"][0]
    for mode in ("fast", "fused"):
        res = out[mode][0]
        for name in ref.arrays:
            assert ref.arrays[name].dtype == res.arrays[name].dtype
            assert (ref.arrays[name].tobytes()
                    == res.arrays[name].tobytes()), (mode, name)
    # Fast is cycle-exact against the oracle; fused only sheds modeled
    # dispatch work, so the invariant counters stay equal and the total
    # never rises.
    assert ref.stats.to_dict() == out["fast"][0].stats.to_dict()
    sf, su = out["fast"][0].stats, out["fused"][0].stats
    for field in INVARIANTS:
        assert getattr(su, field) == getattr(sf, field), field
    assert su.total_cycles <= sf.total_cycles


# ---------------------------------------------------------------------------
# Random programs, both targets
# ---------------------------------------------------------------------------

_ARRAYS = ["a", "b", "c"]


@st.composite
def real_exprs(draw, depth=0):
    if depth > 2 or draw(st.booleans()):
        leaf = draw(st.sampled_from(_ARRAYS + ["lit"]))
        if leaf == "lit":
            # Dyadic literals: exact in binary, so engine comparisons
            # are bit-for-bit meaningful.
            return draw(st.sampled_from(
                ["0.5d0", "2.0d0", "0.25d0", "1.5d0", "3.0d0"]))
        return leaf
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(real_exprs(depth=depth + 1))
    right = draw(real_exprs(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def real_programs(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    lines = [f"double precision a({n}), b({n}), c({n})",
             f"forall (i=1:{n}) a(i) = i * 0.5d0",
             f"forall (i=1:{n}) b(i) = ({n} - i) * 0.25d0",
             f"forall (i=1:{n}) c(i) = i * i * 0.125d0"]
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        tgt = draw(st.sampled_from(_ARRAYS))
        if draw(st.integers(min_value=0, max_value=3)) == 0:
            src = draw(st.sampled_from(_ARRAYS))
            shift = draw(st.integers(min_value=-2, max_value=2))
            lines.append(f"{tgt} = cshift({src}, {shift}, 1)")
        else:
            lines.append(f"{tgt} = {draw(real_exprs())}")
    lines.append("end")
    return "\n".join(lines)


@settings(max_examples=15, deadline=None)
@given(real_programs(), st.sampled_from(["cm2", "cm5"]))
def test_fused_matches_oracle_on_random_programs(source, target):
    exe = compile_source(source, CompilerOptions(target=target))
    assert_contract(run_engines(exe, target))


def test_fused_contract_on_swe():
    exe = compile_source(swe_source(n=16, itmax=3))
    out = run_engines(exe)
    assert_contract(out)
    # SWE's comm-separated phases are the motivating fusion shape: the
    # engine must actually fuse here, not just stay correct.
    summary = out["fused"][1].fusion_summary()
    assert summary["fused_groups"] > 0
    assert summary["fused_routines"] > summary["fused_groups"]
    assert out["fused"][0].stats.fused_groups == summary["fused_groups"]


def test_fused_contract_on_heat_timestep_loop():
    exe = compile_source(heat_source(8, 3))
    assert_contract(run_engines(exe))


def test_fused_contract_on_mixed_shapes():
    exe = compile_source(MIXED_SHAPES)
    assert_contract(run_engines(exe))


def test_fused_runs_are_deterministic():
    exe = compile_source(swe_source(n=16, itmax=2))
    runs = []
    for _ in range(2):
        machine = build_machine("cm2", exec_mode="fused")
        runs.append(exe.run(machine=machine))
    assert runs[0].stats.to_dict() == runs[1].stats.to_dict()
    for name in runs[0].arrays:
        assert (runs[0].arrays[name].tobytes()
                == runs[1].arrays[name].tobytes())


# ---------------------------------------------------------------------------
# Mega-kernel cache: reuse, invalidation, native/Python agreement
# ---------------------------------------------------------------------------


def test_megakernels_are_reused_across_machines():
    exe = compile_source(swe_source(n=16, itmax=2))
    # Warm runs: the first records binding specs (stepwise), the
    # second compiles the mega-kernels from them.
    built = 0
    for _ in range(2):
        machine = build_machine("cm2", exec_mode="fused")
        exe.run(machine=machine)
        built += machine.fusion_metrics["megakernel_builds"]
    assert built > 0
    third = build_machine("cm2", exec_mode="fused")
    exe.run(machine=third)
    # Plans (and their serials) live on the executable, so a fresh
    # machine hits the process-wide mega-kernel cache without building.
    assert third.fusion_metrics["megakernel_builds"] == 0
    assert third.fusion_metrics["megakernel_hits"] > 0


def _mutate_one_add(exe):
    """Flip one faddv to fsubv in place, in a routine that has a
    compiled mega-kernel over its current plan; returns (routine, old
    plan)."""
    kernel_serials = {s for key in execplan._MEGA_KERNELS
                      for s in key[0]}
    for routine in exe.routines.values():
        if get_plan(routine).serial not in kernel_serials:
            continue
        for i, instr in enumerate(routine.body):
            if instr.op == "faddv":
                plan = get_plan(routine)
                routine.body[i] = dataclasses.replace(instr, op="fsubv")
                return routine, plan
    raise AssertionError("no mega-kernel routine with an faddv")


def test_invalidate_plan_evicts_dependent_megakernels():
    exe = compile_source(swe_source(n=16, itmax=2))
    built = 0
    for _ in range(2):  # record specs, then compile the mega-kernels
        machine = build_machine("cm2", exec_mode="fused")
        exe.run(machine=machine)
        built += machine.fusion_metrics["megakernel_builds"]
    assert built > 0

    routine, stale = _mutate_one_add(exe)
    assert any(stale.serial in key[0] for key in execplan._MEGA_KERNELS)
    invalidate_plan(routine)
    # Every kernel compiled over the stale plan is gone; kernels of
    # unrelated plans survive.
    assert not any(stale.serial in key[0]
                   for key in execplan._MEGA_KERNELS)

    # A stale fused result must be impossible: after the in-place edit
    # the fused engine agrees with the oracle re-walking the new body.
    fused = exe.run(machine=build_machine("cm2", exec_mode="fused"))
    oracle = exe.run(machine=build_machine("cm2", exec_mode="interp"))
    for name in oracle.arrays:
        assert (oracle.arrays[name].tobytes()
                == fused.arrays[name].tobytes()), name


@pytest.mark.skipif(_compiler() is None, reason="no C compiler")
def test_native_and_python_megakernels_agree(monkeypatch):
    exe = compile_source(swe_source(n=16, itmax=2))
    native_m = build_machine("cm2", exec_mode="fused")
    native = exe.run(machine=native_m)
    assert native_m.fusion_metrics["megakernel_native"] > 0

    execplan._MEGA_KERNELS.clear()
    monkeypatch.setenv("REPRO_FUSED_CC", "0")
    python_m = build_machine("cm2", exec_mode="fused")
    plain = exe.run(machine=python_m)
    assert python_m.fusion_metrics["megakernel_builds"] > 0
    assert python_m.fusion_metrics["megakernel_native"] == 0

    for name in native.arrays:
        assert (native.arrays[name].tobytes()
                == plain.arrays[name].tobytes()), name
    assert native.stats.to_dict() == plain.stats.to_dict()
    execplan._MEGA_KERNELS.clear()  # rebuild native for later tests


# ---------------------------------------------------------------------------
# Kill switches
# ---------------------------------------------------------------------------


def _fused_summary(exe):
    machine = build_machine("cm2", exec_mode="fused")
    result = exe.run(machine=machine)
    return result, machine.fusion_summary()


def test_transform_option_disables_fusion():
    source = swe_source(n=16, itmax=2)
    options = CompilerOptions(
        transform=TransformOptions(fuse_exec=False))
    result, summary = _fused_summary(compile_source(source, options))
    assert summary["fused_groups"] == 0
    baseline = compile_source(source).run(
        machine=build_machine("cm2", exec_mode="fast"))
    for name in baseline.arrays:
        assert (baseline.arrays[name].tobytes()
                == result.arrays[name].tobytes()), name


def test_target_flag_disables_fusion(monkeypatch):
    from repro.targets import registry

    off = dataclasses.replace(registry.get_target("cm2"),
                              fuse_exec=False)
    monkeypatch.setitem(registry._TARGETS, "cm2", off)
    _, summary = _fused_summary(compile_source(swe_source(n=16, itmax=2)))
    assert summary["fused_groups"] == 0


def test_naive_options_disable_fusion():
    exe = compile_source(swe_source(n=16, itmax=2),
                         CompilerOptions.naive())
    _, summary = _fused_summary(exe)
    assert summary["fused_groups"] == 0
