"""The asyncio serving stack: protocol hardening, admission control,
tenant fairness, singleflight coalescing, graceful drain, and the
awaitable pool-submission API underneath it all.

Everything here drives the server over real TCP sockets (the same path
production clients use); concurrency comes from plain threads so the
tests exercise the cross-thread ``send_request`` contract too.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.service.loadgen import build_workload, run_loadgen
from repro.service.pool import WorkerPool
from repro.service.server import ReproServer, send_request

PROGRAM = """
program tiny
integer, parameter :: n = 8
double precision, array(n,n) :: a, b
a = 1.5d0
b = cshift(a, 1, 1) + a
print *, sum(b)
end program tiny
"""


def _server(tmp_path, **options):
    pool = WorkerPool(1, cache=str(tmp_path))
    server = ReproServer(port=0, pool=pool, **options)
    server.start()
    return server, pool


def _fanout(address, requests):
    """Fire all requests concurrently; responses in request order."""
    responses = [None] * len(requests)

    def one(i, request):
        responses[i] = send_request(address, request, timeout=30.0)

    threads = [threading.Thread(target=one, args=(i, r))
               for i, r in enumerate(requests)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return responses


# -- protocol hardening ------------------------------------------------------


def test_oversized_request_line_gets_structured_error(tmp_path):
    server, pool = _server(tmp_path, max_line_bytes=1024)
    try:
        with socket.create_connection(server.address, timeout=10) as sock:
            # An oversized line and a valid request pipelined behind it
            # in one write: the junk must be skimmed through its
            # newline so the ping still gets answered.
            sock.sendall(b"x" * 5000 + b"\n"
                         + json.dumps({"op": "ping"}).encode() + b"\n")
            reader = sock.makefile("rb")
            first = json.loads(reader.readline())
            second = json.loads(reader.readline())
        assert not first["ok"]
        assert first["error"]["type"] == "RequestTooLarge"
        assert second["ok"]
    finally:
        server.stop()
        pool.close()


def test_malformed_json_gets_structured_error(tmp_path):
    server, pool = _server(tmp_path)
    try:
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b"this is not json\n"
                         + json.dumps({"op": "ping"}).encode() + b"\n")
            reader = sock.makefile("rb")
            first = json.loads(reader.readline())
            second = json.loads(reader.readline())
        assert not first["ok"]
        assert first["error"]["type"] == "BadRequest"
        assert second["ok"]
        # A JSON scalar is equally malformed: requests are objects.
        bad = send_request(server.address, 42)  # type: ignore[arg-type]
        assert bad["error"]["type"] == "BadRequest"
    finally:
        server.stop()
        pool.close()


def test_idle_connection_times_out_with_notice(tmp_path):
    server, pool = _server(tmp_path, idle_timeout=0.3)
    try:
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.settimeout(10)
            reader = sock.makefile("rb")
            t0 = time.monotonic()
            notice = json.loads(reader.readline())
            assert time.monotonic() - t0 >= 0.25
            assert notice["error"]["type"] == "IdleTimeout"
            assert reader.readline() == b""  # then the server hangs up
    finally:
        server.stop()
        pool.close()


def test_client_disconnect_mid_request_leaves_server_healthy(tmp_path):
    server, pool = _server(tmp_path)
    try:
        # Half a request line, then a hard close.
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"op": "pi')
        sock.close()
        # A disconnect right after submitting real work: the response
        # has nowhere to go, but the server must not care.
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(json.dumps(
            {"op": "_sleep", "seconds": 0.3}).encode() + b"\n")
        sock.close()
        assert send_request(server.address, {"op": "ping"})["ok"]
        time.sleep(0.4)  # let the abandoned job finish resolving
        assert send_request(server.address, {"op": "ping"})["ok"]
    finally:
        server.stop()
        pool.close()


# -- admission control -------------------------------------------------------


def test_backpressure_rejects_past_high_water(tmp_path):
    server, pool = _server(tmp_path, high_water=1, max_inflight=1)
    try:
        requests = [{"op": "_sleep", "seconds": 0.4, "id": f"r{i}"}
                    for i in range(5)]
        responses = _fanout(server.address, requests)
        rejected = [r for r in responses
                    if not r["ok"]
                    and r["error"]["type"] == "Overloaded"]
        accepted = [r for r in responses if r["ok"]]
        assert rejected and accepted
        assert all(r["error"]["retry_after_seconds"] > 0
                   for r in rejected)
        assert all(r["id"] for r in rejected)  # id echoed on refusals
        snap = send_request(server.address, {"op": "stats"})
        assert snap["metrics"]["admission"]["rejected"] == len(rejected)
        assert snap["server"]["high_water"] == 1
    finally:
        server.stop()
        pool.close()


def test_tenant_fairness_cold_tenant_is_not_starved(tmp_path):
    """One hog floods the queue; a second tenant's single request must
    be served within roughly one job's time, not after the whole
    backlog (weighted round-robin, one slot in flight)."""
    server, pool = _server(tmp_path, max_inflight=1, high_water=64)
    try:
        hog = [{"op": "_sleep", "seconds": 0.15, "id": f"hog{i}",
                "tenant": "hog"} for i in range(6)]
        done = {}

        def fire(request):
            send_request(server.address, request, timeout=30.0)
            done[request["id"]] = time.monotonic()

        threads = [threading.Thread(target=fire, args=(r,)) for r in hog]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        time.sleep(0.1)  # the hog's backlog is queued now
        small = send_request(server.address,
                             {"op": "_sleep", "seconds": 0.15,
                              "tenant": "small"}, timeout=30.0)
        small_done = time.monotonic() - t0
        for t in threads:
            t.join()
        hog_done = max(done.values()) - t0
        assert small["ok"]
        # FIFO would put the small tenant behind ~6 x 0.15s of backlog;
        # WRR serves it after at most a couple of hog jobs.
        assert small_done < 0.75
        assert hog_done > small_done
        snap = send_request(server.address, {"op": "stats"})
        assert snap["metrics"]["per_tenant"]["hog"] == 6
        assert snap["metrics"]["per_tenant"]["small"] == 1
    finally:
        server.stop()
        pool.close()


# -- singleflight coalescing -------------------------------------------------


def test_singleflight_coalesces_to_one_pool_job(tmp_path):
    server, pool = _server(tmp_path)
    try:
        before = send_request(server.address,
                              {"op": "metrics"})["metrics"]
        requests = [{"op": "_sleep", "seconds": 0.5,
                     "coalesce_key": "same", "id": f"w{i}"}
                    for i in range(6)]
        responses = _fanout(server.address, requests)
        after = send_request(server.address, {"op": "metrics"})["metrics"]
        assert all(r["ok"] for r in responses)
        # Six requests, exactly one pool job.
        assert after["requests"] - before["requests"] == 1
        assert after["singleflight"]["hits"] == 5
        assert after["singleflight"]["leaders"] == 1
        waiters = [r for r in responses if r.get("coalesced")]
        assert len(waiters) == 5
        # Every waiter's envelope carries its *own* id, not the
        # leader's.
        ids = {r["id"] for r in responses}
        assert ids == {f"w{i}" for i in range(6)}
    finally:
        server.stop()
        pool.close()


def test_coalesced_leader_failure_reaches_every_waiter_uncached(
        tmp_path):
    server, pool = _server(tmp_path)
    try:
        requests = [{"op": "_sleep", "seconds": 0.4, "fail": True,
                     "coalesce_key": "boom", "id": f"w{i}"}
                    for i in range(4)]
        responses = _fanout(server.address, requests)
        # Every waiter sees the leader's error...
        assert all(not r["ok"] for r in responses)
        assert all(r["error"]["type"] == "RuntimeError"
                   for r in responses)
        snap = send_request(server.address, {"op": "metrics"})["metrics"]
        assert snap["singleflight"]["leaders"] == 1
        assert snap["singleflight"]["hits"] == 3
        # ...and the failure is not cached: the next same-key request
        # elects a fresh leader (a second real pool job).
        retry = send_request(server.address,
                             {"op": "_sleep", "seconds": 0.0,
                              "fail": True, "coalesce_key": "boom"})
        assert not retry["ok"] and not retry.get("coalesced")
        snap = send_request(server.address, {"op": "metrics"})["metrics"]
        assert snap["singleflight"]["leaders"] == 2
    finally:
        server.stop()
        pool.close()


def test_concurrent_identical_compiles_coalesce(tmp_path):
    """The content-addressed fingerprint coalesces real compiles with
    no explicit key — and distinct sources never share a flight."""
    server, pool = _server(tmp_path)
    try:
        same = [{"op": "compile", "source": PROGRAM, "id": f"s{i}"}
                for i in range(4)]
        other = {"op": "compile",
                 "source": PROGRAM.replace("1.5d0", "2.5d0"),
                 "id": "other"}
        responses = _fanout(server.address, same + [other])
        assert all(r["ok"] for r in responses)
        assert not responses[-1].get("coalesced")
        snap = send_request(server.address, {"op": "metrics"})["metrics"]
        hits = snap["singleflight"]["hits"]
        leaders = snap["singleflight"]["leaders"]
        assert hits + leaders == 5
        assert leaders >= 2  # the distinct source was its own flight
    finally:
        server.stop()
        pool.close()


# -- graceful drain ----------------------------------------------------------


def test_shutdown_drains_inflight_work(tmp_path):
    pool = WorkerPool(1, cache=str(tmp_path))
    server = ReproServer(port=0, pool=pool)
    thread = server.start()
    # A slow job in flight on one connection...
    sock = socket.create_connection(server.address, timeout=10)
    sock.sendall(json.dumps(
        {"op": "_sleep", "seconds": 0.5}).encode() + b"\n")
    time.sleep(0.1)
    # ...then shutdown from another: the ack comes back immediately,
    # and the in-flight job still gets its answer during the drain.
    ack = send_request(server.address, {"op": "shutdown"})
    assert ack["ok"]
    reader = sock.makefile("rb")
    sock.settimeout(10)
    response = json.loads(reader.readline())
    assert response["ok"] and response["slept"] == 0.5
    sock.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    server.server_close()
    pool.close()


def test_new_work_refused_while_draining(tmp_path):
    server, pool = _server(tmp_path, drain_timeout=5.0)
    try:
        fired = threading.Thread(
            target=send_request,
            args=(server.address, {"op": "_sleep", "seconds": 0.4}))
        fired.start()
        time.sleep(0.1)
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        time.sleep(0.1)
        # The listening socket may already refuse; if a connection
        # does get through, the answer is a structured refusal.
        try:
            late = send_request(server.address, {"op": "ping"},
                                timeout=2.0)
            assert late["error"]["type"] == "ShuttingDown"
        except (ConnectionError, OSError):
            pass
        fired.join(timeout=10.0)
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
    finally:
        pool.close()


# -- the pool's awaitable submission API -------------------------------------


def test_pool_sizes_from_cpu_count(monkeypatch):
    from repro.service import pool as pool_mod

    monkeypatch.setenv("REPRO_SERVICE_INPROC", "1")
    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 7)
    for workers in (0, None):
        pool = WorkerPool(workers)
        assert pool.workers == 7
        pool.close()
    # An explicit size is always honored verbatim.
    pool = WorkerPool(3)
    assert pool.workers == 3
    pool.close()


def test_pool_submit_returns_concurrent_futures(tmp_path):
    with WorkerPool(2, cache=str(tmp_path)) as pool:
        assert pool.mode == "pool"
        futures = [pool.submit({"op": "ping", "id": f"f{i}"})
                   for i in range(4)]
        responses = [f.result(timeout=30) for f in futures]
        assert all(r["ok"] for r in responses)
        assert [r["id"] for r in responses] == [f"f{i}" for i in range(4)]
        assert all(r["pool"]["mode"] == "pool" for r in responses)
        assert pool.info()["jobs_dispatched"] >= 4


def test_pool_affinity_routes_repeat_keys_to_warm_worker():
    with WorkerPool(2) as pool:
        assert pool.mode == "pool"
        for _ in range(3):
            pool.submit({"op": "ping"}, affinity="hot-key").result(30)
        assert pool.info()["affinity_hits"] >= 1


def test_pool_warm_start_serves_first_compile(tmp_path):
    """A fresh pool's very first compile works (workers import the
    compiler pipeline before accepting jobs)."""
    with WorkerPool(2, cache=str(tmp_path)) as pool:
        response = pool.submit(
            {"op": "compile", "source": PROGRAM}).result(60)
        assert response["ok"] and response["cache"] == "miss"


# -- loadgen -----------------------------------------------------------------


def test_build_workload_is_mixed_and_tenanted():
    workload = build_workload(1, 12, tenants=3, distinct=4, nonce="t")
    assert len(workload) == 12
    assert {r["tenant"] for r in workload} == {"tenant-1"}
    assert {r["op"] for r in workload} == {"compile", "run"}
    other = build_workload(2, 12, tenants=3, distinct=4, nonce="t")
    assert {r["tenant"] for r in other} == {"tenant-2"}
    # Slots repeat across clients: shared sources are what coalesce.
    assert ({r["source"] for r in workload}
            & {r["source"] for r in other})


def test_run_loadgen_in_process_smoke(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    result = run_loadgen(clients=4, requests=12, tenants=2, workers=1)
    assert result["failure_count"] == 0
    # 4 clients x (1 wave + 3 workload requests) all answered.
    assert result["requests_completed"] == result["requests_sent"] == 16
    assert result["jobs_per_second"] > 0
    assert result["latency_seconds"]["count"] == 16
    assert result["latency_seconds"]["p99"] >= \
        result["latency_seconds"]["p50"]
    # The coalesce wave guarantees singleflight activity every run.
    assert result["server"]["singleflight"]["hits"] >= 1
    assert result["server"]["pool_jobs"] < result["requests_completed"]
    assert set(result["server"]["per_tenant"]) >= \
        {"tenant-0", "tenant-1"}
