"""Runtime tests: NIR evaluator, CM runtime services, host executor."""

import numpy as np
import pytest

from repro import nir
from repro.machine import Machine, slicewise_model
from repro.runtime import cmrt
from repro.runtime.host import (
    Alloc,
    HostExecutor,
    HostProgram,
    IfOp,
    Loop,
    Print,
    ScalarInit,
    ScalarMove,
    Stop,
    WhileOp,
    format_host_program,
)
from repro.runtime.nir_eval import EvalError, NirEvaluator


def evaluator(arrays=None, scalars=None, domains=None):
    arrays = arrays or {}
    return NirEvaluator(read_array=lambda n: arrays[n],
                        scalars=scalars or {}, domains=domains or {})


class TestNirEvaluator:
    def test_scalar_constant(self):
        assert evaluator().eval(nir.int_const(5)) == 5

    def test_svar(self):
        assert evaluator(scalars={"x": 2.5}).eval(nir.SVar("x")) == 2.5

    def test_unbound_svar_raises(self):
        with pytest.raises(EvalError):
            evaluator().eval(nir.SVar("nope"))

    def test_avar_everywhere(self):
        a = np.arange(6).reshape(2, 3)
        out = evaluator({"a": a}).eval(nir.AVar("a"))
        np.testing.assert_array_equal(out, a)

    def test_section_subscript(self):
        a = np.arange(10)
        field = nir.Subscript((nir.IndexRange(nir.int_const(2),
                                              nir.int_const(8),
                                              nir.int_const(2)),))
        out = evaluator({"a": a}).eval(nir.AVar("a", field))
        np.testing.assert_array_equal(out, [1, 3, 5, 7])

    def test_scalar_subscript_drops_axis(self):
        a = np.arange(12).reshape(3, 4)
        field = nir.Subscript((nir.int_const(2),
                               nir.IndexRange(None, None)))
        out = evaluator({"a": a}).eval(nir.AVar("a", field))
        np.testing.assert_array_equal(out, a[1])

    def test_gather_diagonal(self):
        a = np.arange(16).reshape(4, 4)
        lu = nir.LocalUnder(nir.Interval(1, 4), 1)
        field = nir.Subscript((lu, lu))
        out = evaluator({"a": a}).eval(nir.AVar("a", field))
        np.testing.assert_array_equal(out, [0, 5, 10, 15])

    def test_local_under_coordinates(self):
        shape = nir.ProdDom((nir.Interval(1, 2), nir.Interval(1, 3)))
        out = evaluator().eval(nir.LocalUnder(shape, 2))
        np.testing.assert_array_equal(out, [[1, 2, 3], [1, 2, 3]])

    def test_local_under_through_domain(self):
        out = evaluator(domains={"alpha": nir.Interval(2, 8, 2)}).eval(
            nir.LocalUnder(nir.DomainRef("alpha"), 1))
        np.testing.assert_array_equal(out, [2, 4, 6, 8])

    def test_binary_integer_division(self):
        v = nir.Binary(nir.BinOp.DIV, nir.int_const(-7), nir.int_const(2))
        assert evaluator().eval(v) == -3

    def test_float_division(self):
        v = nir.Binary(nir.BinOp.DIV, nir.float_const(7.0),
                       nir.int_const(2))
        assert evaluator().eval(v) == 3.5

    def test_cshift_semantics(self):
        # CSHIFT(v, SHIFT=s): result(i) = v(i+s), circular.
        a = np.array([1, 2, 3, 4])
        call = nir.FcnCall("cshift", (nir.AVar("a"), nir.int_const(1),
                                      nir.int_const(1)))
        out = evaluator({"a": a}).eval(call)
        np.testing.assert_array_equal(out, [2, 3, 4, 1])

    def test_cshift_negative(self):
        a = np.array([1, 2, 3, 4])
        call = nir.FcnCall("cshift", (nir.AVar("a"), nir.int_const(-1),
                                      nir.int_const(1)))
        out = evaluator({"a": a}).eval(call)
        np.testing.assert_array_equal(out, [4, 1, 2, 3])

    def test_eoshift_boundary(self):
        a = np.array([1, 2, 3, 4])
        call = nir.FcnCall("eoshift", (nir.AVar("a"), nir.int_const(1),
                                       nir.int_const(0), nir.int_const(1)))
        out = evaluator({"a": a}).eval(call)
        np.testing.assert_array_equal(out, [2, 3, 4, 0])

    def test_transpose(self):
        a = np.arange(6).reshape(2, 3)
        out = evaluator({"a": a}).eval(nir.FcnCall("transpose",
                                                   (nir.AVar("a"),)))
        np.testing.assert_array_equal(out, a.T)

    def test_spread(self):
        a = np.array([1, 2, 3])
        call = nir.FcnCall("spread", (nir.AVar("a"), nir.int_const(1),
                                      nir.int_const(2)))
        out = evaluator({"a": a}).eval(call)
        assert out.shape == (2, 3)

    def test_reductions(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        ev = evaluator({"a": a})
        assert ev.eval(nir.FcnCall("sum", (nir.AVar("a"),))) == 10.0
        assert ev.eval(nir.FcnCall("maxval", (nir.AVar("a"),))) == 4.0
        assert ev.eval(nir.FcnCall("minval", (nir.AVar("a"),))) == 1.0
        cnt = ev.eval(nir.FcnCall(
            "count", (nir.Binary(nir.BinOp.GT, nir.AVar("a"),
                                 nir.float_const(1.5)),)))
        assert cnt == 3

    def test_dimensional_reduction(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = evaluator({"a": a}).eval(
            nir.FcnCall("sum", (nir.AVar("a"), nir.int_const(1))))
        np.testing.assert_array_equal(out, [4.0, 6.0])

    def test_merge(self):
        out = evaluator({"m": np.array([True, False])}).eval(
            nir.FcnCall("merge", (nir.int_const(1), nir.int_const(0),
                                  nir.AVar("m"))))
        np.testing.assert_array_equal(out, [1, 0])

    def test_eval_scalar_rejects_arrays(self):
        with pytest.raises(EvalError):
            evaluator({"a": np.arange(4)}).eval_scalar(nir.AVar("a"))


class TestCmrtServices:
    def machine(self):
        m = Machine(slicewise_model(64))
        m.alloc("a", (8,), np.dtype(np.float64))
        m.alloc("b", (8,), np.dtype(np.float64))
        m.set_array("a", np.arange(8.0))
        return m

    def ev(self, m, scalars=None):
        return NirEvaluator(read_array=lambda n: m.home(n).data,
                            scalars=scalars or {})

    def test_cshift_executes_and_charges(self):
        m = self.machine()
        clause = nir.MoveClause(
            nir.TRUE,
            nir.FcnCall("cshift", (nir.AVar("a"), nir.int_const(2),
                                   nir.int_const(1))),
            nir.AVar("b"))
        cmrt.execute_comm(m, self.ev(m), clause, "cshift")
        np.testing.assert_array_equal(m.home("b").data,
                                      np.roll(np.arange(8.0), -2))
        assert m.stats.comm_cycles > 0
        assert m.stats.comm_ops == 1

    def test_copy_into_section(self):
        m = self.machine()
        tgt = nir.AVar("b", nir.Subscript((
            nir.IndexRange(nir.int_const(1), nir.int_const(4)),)))
        src = nir.AVar("a", nir.Subscript((
            nir.IndexRange(nir.int_const(5), nir.int_const(8)),)))
        cmrt.execute_comm(m, self.ev(m), nir.MoveClause(nir.TRUE, src, tgt),
                          "copy")
        np.testing.assert_array_equal(m.home("b").data[:4], [4, 5, 6, 7])

    def test_gather_charges_router(self):
        m = Machine(slicewise_model(64))
        m.alloc("a", (4, 4), np.dtype(np.float64))
        m.alloc("c", (4,), np.dtype(np.float64))
        m.set_array("a", np.arange(16.0).reshape(4, 4))
        lu = nir.LocalUnder(nir.Interval(1, 4), 1)
        src = nir.AVar("a", nir.Subscript((lu, lu)))
        cmrt.execute_comm(m, self.ev(m),
                          nir.MoveClause(nir.TRUE, src, nir.AVar("c")),
                          "gather")
        np.testing.assert_array_equal(m.home("c").data, [0, 5, 10, 15])
        assert m.stats.comm_cycles >= m.model.router_latency

    def test_reduce_into_scalar(self):
        m = self.machine()
        scalars = {}
        clause = nir.MoveClause(
            nir.TRUE, nir.FcnCall("sum", (nir.AVar("a"),)), nir.SVar("s"))
        cmrt.execute_reduce(m, self.ev(m, scalars), clause, scalars)
        assert scalars["s"] == 28.0
        assert m.stats.reductions == 1

    def test_masked_comm_rejected(self):
        m = self.machine()
        clause = nir.MoveClause(
            nir.FALSE, nir.AVar("a"), nir.AVar("b"))
        with pytest.raises(cmrt.RuntimeError_):
            cmrt.execute_comm(m, self.ev(m), clause, "copy")


class TestHostExecutor:
    def run(self, ops, machine=None):
        m = machine or Machine(slicewise_model(64))
        ex = HostExecutor(m)
        ex.run(HostProgram(name="t", ops=tuple(ops)))
        return ex, m

    def test_alloc_and_scalar_init(self):
        ex, m = self.run([
            Alloc("a", (4,), "float64"),
            ScalarInit("x", 3),
        ])
        assert "a" in m.arrays
        assert ex.scalars["x"] == 3

    def test_scalar_move(self):
        ex, _ = self.run([
            ScalarInit("x", 3),
            ScalarMove(nir.MoveClause(
                nir.TRUE,
                nir.Binary(nir.BinOp.MUL, nir.SVar("x"), nir.int_const(2)),
                nir.SVar("y"))),
        ])
        assert ex.scalars["y"] == 6

    def test_loop_binds_index(self):
        ex, _ = self.run([
            ScalarInit("acc", 0),
            Loop("i", 1, 4, 1, (
                ScalarMove(nir.MoveClause(
                    nir.TRUE,
                    nir.Binary(nir.BinOp.ADD, nir.SVar("acc"),
                               nir.SVar("i")),
                    nir.SVar("acc"))),
            )),
        ])
        assert ex.scalars["acc"] == 10
        assert ex.scalars["i"] == 4

    def test_while_loop(self):
        ex, _ = self.run([
            ScalarInit("x", 0),
            WhileOp(nir.Binary(nir.BinOp.LT, nir.SVar("x"),
                               nir.int_const(5)), (
                ScalarMove(nir.MoveClause(
                    nir.TRUE,
                    nir.Binary(nir.BinOp.ADD, nir.SVar("x"),
                               nir.int_const(2)),
                    nir.SVar("x"))),
            )),
        ])
        assert ex.scalars["x"] == 6

    def test_if_branches(self):
        ex, _ = self.run([
            ScalarInit("x", 10),
            IfOp(nir.Binary(nir.BinOp.GT, nir.SVar("x"), nir.int_const(5)),
                 (ScalarInit("y", 1),), (ScalarInit("y", 2),)),
        ])
        assert ex.scalars["y"] == 1

    def test_print_captures_output(self):
        ex, _ = self.run([
            ScalarInit("x", 7),
            Print((nir.SVar("x"),)),
        ])
        assert ex.output == ["7"]

    def test_stop_halts(self):
        ex, _ = self.run([
            ScalarInit("x", 1),
            Stop(),
            ScalarInit("x", 2),
        ])
        assert ex.scalars["x"] == 1

    def test_format_host_program(self):
        prog = HostProgram(name="t", ops=(
            Alloc("a", (4,), "float64"),
            Loop("i", 1, 2, 1, (Print((nir.SVar("i"),)),)),
        ))
        text = format_host_program(prog)
        assert "alloc a[4]" in text
        assert "for i = 1, 2, 1:" in text
        assert "print" in text
