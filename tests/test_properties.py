"""Property-based tests (hypothesis) on core invariants.

* random whole-array expression programs: compiled == reference;
* random shapes: extents/points/size agree; strip-mine partitions;
* random vector IR: allocation preserves dataflow under any pressure;
* PEAC assembler round-trips; region overlap is sound vs enumeration.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nir
from repro.backend.cm2.regalloc import allocate
from repro.backend.cm2.vir import (
    SrcKind,
    StreamSpec,
    VProgram,
    imm,
    stream_src,
    virt,
)
from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model
from repro.peac import Routine, format_routine, parse_routine
from repro.transform import regions as rg

# ---------------------------------------------------------------------------
# Random expression programs
# ---------------------------------------------------------------------------

_ARRAYS = ["a", "b", "c"]


@st.composite
def int_exprs(draw, depth=0):
    """A random integer-elemental expression over arrays a, b, c."""
    if depth > 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(
            _ARRAYS + ["lit"]))
        if leaf == "lit":
            return str(draw(st.integers(min_value=1, max_value=9)))
        return leaf
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def expr_programs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    lines = [f"integer a({n}), b({n}), c({n})",
             f"forall (i=1:{n}) a(i) = i",
             f"forall (i=1:{n}) b(i) = 2*i - {n}",
             f"forall (i=1:{n}) c(i) = mod(i, 3)"]
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        tgt = draw(st.sampled_from(_ARRAYS))
        expr = draw(int_exprs())
        lines.append(f"{tgt} = {expr}")
    lines.append("end")
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(expr_programs())
def test_random_programs_match_reference(source):
    exe = compile_source(source)
    result = exe.run(Machine(slicewise_model(64)))
    ref = run_reference(parse_program(source))
    for name, expected in ref.arrays.items():
        np.testing.assert_array_equal(result.arrays[name], expected)


@settings(max_examples=20, deadline=None)
@given(expr_programs())
def test_naive_and_optimized_agree(source):
    opt = compile_source(source).run(Machine(slicewise_model(64)))
    naive = compile_source(source, CompilerOptions.naive()).run(
        Machine(slicewise_model(64)))
    for name in opt.arrays:
        np.testing.assert_array_equal(opt.arrays[name],
                                      naive.arrays[name])


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------


@st.composite
def intervals(draw):
    lo = draw(st.integers(min_value=-5, max_value=20))
    span = draw(st.integers(min_value=0, max_value=30))
    stride = draw(st.integers(min_value=1, max_value=4))
    return nir.Interval(lo, lo + span, stride)


@settings(max_examples=100, deadline=None)
@given(intervals())
def test_interval_extent_matches_point_enumeration(interval):
    pts = list(nir.points(interval))
    assert len(pts) == nir.size(interval)
    assert nir.extents(interval) == (len(pts),)
    # Points are exactly the arithmetic progression.
    assert [p[0] for p in pts] == list(
        range(interval.lo, interval.hi + 1, interval.stride))


@settings(max_examples=50, deadline=None)
@given(st.lists(intervals(), min_size=1, max_size=3))
def test_prod_dom_size_is_product(dims):
    s = nir.ProdDom(tuple(dims))
    assert nir.size(s) == math.prod(nir.size(d) for d in dims)
    assert len(list(nir.points(s))) == nir.size(s)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=16))
def test_strip_mine_partitions(n, block):
    from repro.transform import strip_mine
    blocks = strip_mine(nir.Interval(1, n), block)
    covered = [p[0] for b in blocks for p in nir.points(b)]
    assert covered == list(range(1, n + 1))
    assert all(nir.size(b) <= block for b in blocks)


# ---------------------------------------------------------------------------
# Regions
# ---------------------------------------------------------------------------


@st.composite
def region_axes(draw, n):
    lo = draw(st.integers(min_value=1, max_value=n))
    hi = draw(st.integers(min_value=lo, max_value=n))
    st_ = draw(st.integers(min_value=1, max_value=3))
    return (lo, hi, st_)


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_region_overlap_sound(data):
    """If the analyzer says disjoint, enumeration must agree."""
    n = data.draw(st.integers(min_value=1, max_value=24))
    a = rg.Region((n,), (data.draw(region_axes(n)),))
    b = rg.Region((n,), (data.draw(region_axes(n)),))

    def pts(r):
        lo, hi, step = r.axes[0]
        return set(range(lo, hi + 1, step))

    truly_overlap = bool(pts(a) & pts(b))
    if not rg.regions_overlap(a, b):
        assert not truly_overlap  # "disjoint" must never be wrong


# ---------------------------------------------------------------------------
# Register allocation under pressure
# ---------------------------------------------------------------------------


@st.composite
def vir_programs(draw):
    """Random straight-line programs over a few input streams."""
    p = VProgram()
    n_inputs = draw(st.integers(min_value=1, max_value=4))
    vals = []
    for i in range(n_inputs):
        sid = p.add_stream(StreamSpec(kind="array", array=f"in{i}"))
        vals.append(p.emit("load", (stream_src(sid),)))
    n_ops = draw(st.integers(min_value=1, max_value=24))
    for _ in range(n_ops):
        op = draw(st.sampled_from(["faddv", "fsubv", "fmulv"]))
        a = draw(st.sampled_from(vals))
        b = draw(st.sampled_from(vals + [imm(float(
            draw(st.integers(min_value=1, max_value=5))))]))
        vals.append(p.emit(op, (a, b)))
    out = p.add_stream(StreamSpec(kind="array", array="out",
                                  direction="w"))
    p.emit_store(vals[-1], out)
    return p


def _simulate_vir(ops, streams):
    """Interpret VOps or PhysOps over float stream values."""
    regs, slots = {}, {}
    stored = None
    for op in ops:
        def read(s):
            if s.kind is SrcKind.VIRT:
                return regs[s.index]
            if s.kind is SrcKind.STREAM:
                return streams[s.index]
            return s.value

        name = op.op
        if name == "load":
            regs[op.dst] = read(op.srcs[0])
        elif name == "store":
            stored = read(op.srcs[0])
        elif name == "spill":
            slots[op.slot] = read(op.srcs[0])
        elif name == "restore":
            regs[op.dst] = slots[op.slot]
        elif name == "faddv":
            regs[op.dst] = read(op.srcs[0]) + read(op.srcs[1])
        elif name == "fsubv":
            regs[op.dst] = read(op.srcs[0]) - read(op.srcs[1])
        elif name == "fmulv":
            regs[op.dst] = read(op.srcs[0]) * read(op.srcs[1])
        else:  # pragma: no cover
            raise AssertionError(name)
    return stored


@settings(max_examples=80, deadline=None)
@given(vir_programs(), st.integers(min_value=2, max_value=8))
def test_allocation_preserves_dataflow(program, num_regs):
    streams = {i: float(i * 3 + 1) for i in range(len(program.streams))}
    want = _simulate_vir(program.ops, streams)
    result = allocate(program, num_regs=num_regs)
    got = _simulate_vir(result.ops, streams)
    assert got == want
    # Physical registers stay in range.
    for op in result.ops:
        if op.dst >= 0:
            assert 0 <= op.dst < num_regs


@settings(max_examples=40, deadline=None)
@given(vir_programs())
def test_chaining_preserves_dataflow(program):
    from repro.backend.cm2.chaining import chain_loads
    streams = {i: float(i * 7 + 2) for i in range(len(program.streams))}
    want = _simulate_vir(program.ops, streams)
    arrays = {i: s.array for i, s in enumerate(program.streams)}
    chained = chain_loads(program, arrays)
    got = _simulate_vir(chained.ops, streams)
    assert got == want


# ---------------------------------------------------------------------------
# Assembler round-trip
# ---------------------------------------------------------------------------


@st.composite
def routines(draw):
    from repro.peac import Imm, Instr, Mem, PReg, SReg, VReg

    r = Routine(f"Pk{draw(st.integers(min_value=0, max_value=99))}vs1")
    n = draw(st.integers(min_value=1, max_value=10))
    body = []
    for _ in range(n):
        choice = draw(st.integers(min_value=0, max_value=3))
        v = lambda: VReg(draw(st.integers(min_value=0, max_value=7)))
        mem = lambda: Mem(PReg(draw(st.integers(min_value=0, max_value=15))),
                          0, draw(st.sampled_from([0, 1])))
        if choice == 0:
            body.append(Instr("flodv", (mem(), v())))
        elif choice == 1:
            body.append(Instr("fstrv", (v(), mem())))
        elif choice == 2:
            op = draw(st.sampled_from(["faddv", "fsubv", "fmulv",
                                       "fdivv"]))
            body.append(Instr(op, (v(), v(), v())))
        else:
            body.append(Instr(
                "fmav", (v(), SReg(draw(st.integers(min_value=0,
                                                    max_value=31))),
                         Imm(float(draw(st.integers(min_value=0,
                                                    max_value=9)))),
                         v())))
    r.body = body
    return r


@settings(max_examples=60, deadline=None)
@given(routines())
def test_assembler_round_trip(routine):
    text = format_routine(routine)
    again = parse_routine(text)
    assert again.name == routine.name
    assert again.body == routine.body


# ---------------------------------------------------------------------------
# Reference interpreter: vectorized FORALL path == per-point path
# ---------------------------------------------------------------------------


@st.composite
def forall_programs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    body = draw(st.sampled_from([
        "a(i,j) = i*10 + j",
        "a(j,i) = i - j",
        "a(i,j) = b(i,j) * 2",
        "a(i,j) = b(j,i) + i",
        "a(i,j) = mod(i*j, 4)",
    ]))
    mask = draw(st.sampled_from(["", ", i > j", ", mod(i+j, 2) == 0"]))
    return "\n".join([
        f"integer, array({n},{n}) :: a, b",
        f"forall (i=1:{n}, j=1:{n}) b(i,j) = i + j*j",
        f"forall (i=1:{n}, j=1:{n}{mask}) {body}",
        "end",
    ])


@settings(max_examples=40, deadline=None)
@given(forall_programs())
def test_forall_vectorized_matches_per_point(source):
    from repro.driver.reference import Interpreter

    unit = parse_program(source)
    slow = Interpreter(unit)
    # Force the defining per-point path by disabling the fast path.
    slow._exec_forall_vectorized = lambda *a, **k: (_ for _ in ()).throw(
        RuntimeError())
    slow.run()

    fast = Interpreter(unit)
    for stmt in unit.body:
        names = [t.var for t in stmt.triplets]
        ranges = [range(int(fast.eval(t.lo)), int(fast.eval(t.hi)) + 1,
                        int(fast.eval(t.stride)) if t.stride else 1)
                  for t in stmt.triplets]
        fast._exec_forall_vectorized(stmt, names, ranges)

    for name in slow.arrays:
        np.testing.assert_array_equal(slow.arrays[name],
                                      fast.arrays[name])


# ---------------------------------------------------------------------------
# Random strided-section programs: the Figure 10 padding path
# ---------------------------------------------------------------------------


@st.composite
def section_programs(draw):
    n = draw(st.integers(min_value=6, max_value=20))
    lines = [f"integer a({n}), b({n})",
             f"forall (i=1:{n}) a(i) = i * 3 - {n}",
             f"forall (i=1:{n}) b(i) = {n} - i"]
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        lo = draw(st.integers(min_value=1, max_value=n // 2))
        hi = draw(st.integers(min_value=lo, max_value=n))
        stride = draw(st.integers(min_value=1, max_value=3))
        tgt, src = draw(st.sampled_from([("a", "b"), ("b", "a"),
                                         ("a", "a"), ("b", "b")]))
        rhs = draw(st.sampled_from([
            f"{src}({lo}:{hi}:{stride}) + 1",
            f"2 * {src}({lo}:{hi}:{stride})",
            f"{tgt}({lo}:{hi}:{stride}) - {src}({lo}:{hi}:{stride})",
        ]))
        lines.append(f"{tgt}({lo}:{hi}:{stride}) = {rhs}")
    lines.append("end")
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(section_programs())
def test_random_section_programs_match_reference(source):
    exe = compile_source(source)
    result = exe.run(Machine(slicewise_model(64)))
    ref = run_reference(parse_program(source))
    for name, expected in ref.arrays.items():
        np.testing.assert_array_equal(result.arrays[name], expected)


# ---------------------------------------------------------------------------
# Random stencil programs: standard vs neighborhood model equality
# ---------------------------------------------------------------------------


@st.composite
def stencil_programs(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    lines = [f"integer u({n},{n}), v({n},{n})",
             f"forall (i=1:{n}, j=1:{n}) u(i,j) = i*{n} + j",
             f"forall (i=1:{n}, j=1:{n}) v(i,j) = i - j"]
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        tgt, src = draw(st.sampled_from([("u", "v"), ("v", "u"),
                                         ("u", "u")]))
        terms = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            shift = draw(st.integers(min_value=-2, max_value=2))
            dim = draw(st.integers(min_value=1, max_value=2))
            terms.append(f"cshift({src}, {shift}, {dim})")
        lines.append(f"{tgt} = {' + '.join(terms)} + {src}")
    lines.append("end")
    return "\n".join(lines)


@settings(max_examples=30, deadline=None)
@given(stencil_programs())
def test_neighborhood_model_agrees_with_standard(source):
    standard = compile_source(source).run(Machine(slicewise_model(64)))
    nbhd = compile_source(source, CompilerOptions.neighborhood()).run(
        Machine(slicewise_model(64)))
    ref = run_reference(parse_program(source))
    for name, expected in ref.arrays.items():
        np.testing.assert_array_equal(standard.arrays[name], expected)
        np.testing.assert_array_equal(nbhd.arrays[name], expected)


# ---------------------------------------------------------------------------
# NIR abstract machine agrees with the compiled machine on random programs
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(expr_programs())
def test_nir_interpreter_agrees(source):
    from repro.lowering import check_program, lower_program
    from repro.nir.interp import run_nir
    from repro.transform import optimize

    lowered = lower_program(parse_program(source))
    check_program(lowered.nir, lowered.env)
    optimized = optimize(lowered)
    nir_result = run_nir(optimized.nir, optimized.env)
    compiled = compile_source(source).run(Machine(slicewise_model(64)))
    for name in compiled.arrays:
        if name.startswith(("tmp", "stmp")):
            continue
        np.testing.assert_array_equal(nir_result.arrays[name],
                                      compiled.arrays[name])


# ---------------------------------------------------------------------------
# Front-end robustness: arbitrary text never crashes with a foreign error
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=120))
def test_parser_total_on_ascii_garbage(text):
    from repro.frontend.lexer import LexError
    from repro.frontend.parser import ParseError
    from repro.frontend.inline import InlineError

    try:
        parse_program(text)
    except (LexError, ParseError, InlineError):
        pass  # rejecting with a diagnostic is the contract


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from([
    "integer a(8)", "a = 1", "do i = 1, 4", "end do", "end", "where (m)",
    "end where", "forall (i=1:4) a(i) = i", "if (x) then", "endif",
    "call f(a)", "print *, a", "10 continue", "a(1:4) = a(5:8)",
]), max_size=10))
def test_parser_total_on_shuffled_statements(lines):
    from repro.frontend.lexer import LexError
    from repro.frontend.parser import ParseError
    from repro.frontend.inline import InlineError

    try:
        parse_program("\n".join(lines))
    except (LexError, ParseError, InlineError):
        pass


# ---------------------------------------------------------------------------
# Geometry invariants
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=300), min_size=1,
                max_size=3),
       st.sampled_from([1, 2, 8, 64, 512, 2048]))
def test_geometry_invariants(extents, n_pes):
    from repro.machine.geometry import make_geometry

    g = make_geometry(tuple(extents), n_pes)
    # Never more PEs along an axis than elements.
    for e, p in zip(g.extents, g.pe_grid):
        assert 1 <= p <= e
    # The PE grid is a power-of-two factorization within budget.
    assert g.pes_used <= n_pes
    assert g.pes_used & (g.pes_used - 1) == 0
    # Subgrids cover the array: ceil division exactly (trailing PEs may
    # sit idle when the extent doesn't divide, but never a smaller block).
    for e, p, s in zip(g.extents, g.pe_grid, g.subgrid):
        assert p * s >= e
        assert s == -(-e // p)
    assert g.vlen >= 1
