"""Blocking (Fig. 9), masking (Fig. 10), promotion and loop-rule tests."""

import pytest

from repro import nir
from repro.programs.kernels import blocking_source, deck_source, where_source
from repro.transform import (
    MaskPadder,
    Options,
    PhaseClassifier,
    PhaseKind,
    fuse_phases,
    masks_disjoint,
    schedule_phases,
    unroll_do,
    interchange,
    strip_mine,
    fuse_do,
)
from repro.transform.promotion import LoopPromoter
from repro.transform.pipeline import unwrap_body

from .conftest import lower, transform


def phases_of(tp):
    body = tp.inner_body()
    actions = (body.actions if isinstance(body, nir.Sequentially)
               else [body])
    return actions


class TestFigure9Blocking:
    def test_three_moves_become_two_phases(self):
        tp = transform(blocking_source(64))
        actions = phases_of(tp)
        moves = [a for a in actions if isinstance(a, nir.Move)]
        assert len(moves) == 2

    def test_like_domain_moves_fused(self):
        tp = transform(blocking_source(64))
        assert tp.report.blocking.fused_blocks == 1
        assert 2 in tp.report.blocking.block_lengths

    def test_diagonal_becomes_gather(self):
        tp = transform(blocking_source(64))
        text = nir.pretty(tp.nir)
        # Figure 9's canonical diagonal access notation.
        assert "subscript[local_under" in text

    def test_blocking_off_keeps_phases(self):
        tp = transform(blocking_source(64),
                       Options(block=False, fuse=False, pad_masks=False))
        moves = [a for a in phases_of(tp) if isinstance(a, nir.Move)]
        assert len(moves) >= 3

    def test_scheduler_respects_dependences(self):
        src = ("integer a(8), b(8), c(9)\n"
               "a = 1\nc = 2\nb = a + 1\na = b\nend")
        tp = transform(src)
        # a=1 must precede b=a+1 must precede a=b, whatever c does.
        moves = [a for a in phases_of(tp) if isinstance(a, nir.Move)]
        flat = []
        for m in moves:
            for cl in m.clauses:
                flat.append((cl.tgt.name, str(cl.src)))
        a_first = next(i for i, (t, s) in enumerate(flat) if t == "a")
        b_pos = next(i for i, (t, s) in enumerate(flat) if t == "b")
        a_last = max(i for i, (t, s) in enumerate(flat) if t == "a")
        assert a_first < b_pos < a_last


class TestFigure10Masking:
    def test_sections_padded(self):
        tp = transform(where_source(32))
        assert tp.report.masking.padded == 2

    def test_padded_block_fuses_three_clauses(self):
        tp = transform(where_source(32))
        assert max(tp.report.blocking.block_lengths) == 3

    def test_two_compute_blocks_total(self):
        # The paper: "This fragment could be compiled into two PEAC
        # routines" (the alpha block and the 1-D C move).
        tp = transform(where_source(32))
        classifier = PhaseClassifier(tp.env)
        kinds = [p.kind for p in classifier.split(tp.inner_body())]
        assert kinds.count(PhaseKind.COMPUTE) == 2

    def test_mask_uses_mod_on_coordinates(self):
        tp = transform(where_source(32))
        text = nir.pretty(tp.nir)
        assert "BINARY(Mod" in text
        assert "local_under" in text

    def test_padding_preserves_region_mask_structure(self):
        lowered = lower("integer a(8), b(8)\nb(2:7:2) = a(2:7:2)\nend")
        padder = MaskPadder(lowered.env)
        body = padder.pad_program(unwrap_body(lowered.nir))
        (move,) = [a for a in nir.imperatives.walk(body)
                   if isinstance(a, nir.Move)]
        clause = move.clauses[0]
        assert isinstance(clause.tgt.field, nir.Everywhere)
        assert not clause.is_unconditional

    def test_full_sections_not_padded(self):
        lowered = lower("integer a(8), b(8)\nb(1:8) = a(1:8)\nend")
        padder = MaskPadder(lowered.env)
        padder.pad_program(unwrap_body(lowered.nir))
        assert padder.report.padded == 0

    def test_masks_disjoint_complement(self):
        m = nir.Binary(nir.BinOp.GT, nir.AVar("a"), nir.int_const(0))
        c1 = nir.MoveClause(m, nir.int_const(1), nir.AVar("b"))
        c2 = nir.MoveClause(nir.Unary(nir.UnOp.NOT, m), nir.int_const(2),
                            nir.AVar("b"))
        assert masks_disjoint(c1, c2, None, {})

    def test_masks_disjoint_residues(self):
        tp = transform(where_source(32))
        block = next(a for a in phases_of(tp)
                     if isinstance(a, nir.Move) and len(a.clauses) == 3)
        odd, even = block.clauses[1], block.clauses[2]
        # The odd-row and even-row masks never select the same point.
        # (even's mask is an AND including the residue; extract check via
        # the disjointness helper on the raw residue forms is covered by
        # the complement/residue unit tests; here just sanity-run it.)
        assert odd.mask != even.mask


class TestPromotion:
    def test_deck_fully_vectorizes(self):
        tp = transform(deck_source(16, 8))
        assert tp.report.promotion.promoted >= 3

    def test_promoted_deck_first_nest_everywhere(self):
        tp = transform("INTEGER K(8,4)\nINTEGER I, J\n"
                       "DO 10 I=1,8\nDO 20 J=1,4\nK(I,J) = 2*K(I,J)+5\n"
                       "20 CONTINUE\n10 CONTINUE\nEND")
        moves = [a for a in phases_of(tp) if isinstance(a, nir.Move)]
        targets = [c.tgt for m in moves for c in m.clauses
                   if isinstance(c.tgt, nir.AVar)]
        assert any(isinstance(t.field, nir.Everywhere) for t in targets)

    def test_loop_carried_dependence_rejected(self):
        tp = transform("integer a(8)\ninteger i\n"
                       "do 1 i=2,8\na(i) = a(i-1)\n1 continue\nend")
        assert tp.report.promotion.promoted == 0
        assert tp.report.promotion.rejected >= 1

    def test_reduction_style_loop_rejected(self):
        tp = transform("integer a(8)\ninteger i, s\ns = 0\n"
                       "do 1 i=1,8\na(i) = i\n1 continue\nend")
        # writing a slice-local target is promotable
        assert tp.report.promotion.promoted == 1

    def test_index_value_becomes_coordinate(self):
        tp = transform("integer a(8)\ninteger i\n"
                       "do 1 i=1,8\na(i) = i*i\n1 continue\nend")
        (move,) = [a for a in phases_of(tp) if isinstance(a, nir.Move)
                   and isinstance(a.clauses[0].tgt, nir.AVar)]
        assert nir.collect(move.clauses[0].src, nir.LocalUnder)

    def test_do_variable_final_value_preserved(self):
        # 'i' is observed after the loop, so its Fortran exit value must
        # survive promotion (9 = one step past the last iteration).
        tp = transform("integer a(8)\ninteger i\n"
                       "do 1 i=1,8\na(i) = 1\n1 continue\nprint *, i\nend")
        scalar_moves = [
            a for a in phases_of(tp) if isinstance(a, nir.Move)
            and isinstance(a.clauses[0].tgt, nir.SVar)]
        assert scalar_moves
        assert scalar_moves[0].clauses[0].src == nir.int_const(9)

    def test_unobserved_do_variable_store_eliminated(self):
        tp = transform("integer a(8)\ninteger i\n"
                       "do 1 i=1,8\na(i) = 1\n1 continue\nend")
        scalar_moves = [
            a for a in phases_of(tp) if isinstance(a, nir.Move)
            and isinstance(a.clauses[0].tgt, nir.SVar)]
        assert not scalar_moves

    def test_strided_loop_promotes(self):
        tp = transform("integer a(9)\ninteger i\n"
                       "do 1 i=1,9,2\na(i) = 7\n1 continue\nend")
        assert tp.report.promotion.promoted == 1

    def test_diagonal_write_rejected(self):
        tp = transform("integer a(8,8)\ninteger i\n"
                       "do 1 i=1,8\na(i,i) = 1\n1 continue\nend")
        assert tp.report.promotion.promoted == 0


class TestFigure4LoopRules:
    def body_move(self):
        return nir.move1(nir.SVar("i"),
                         nir.AVar("a", nir.Subscript((nir.SVar("i"),))))

    def test_unroll_point(self):
        do = nir.Do(nir.Point(3), self.body_move(), index_names=("i",))
        out = unroll_do(do)
        assert isinstance(out, nir.Move)
        assert out.clauses[0].src == nir.int_const(3)

    def test_unroll_interval(self):
        do = nir.Do(nir.SerialInterval(1, 3), self.body_move(),
                    index_names=("i",))
        out = unroll_do(do)
        assert isinstance(out, nir.Sequentially)
        assert len(out.actions) == 3

    def test_unroll_product_space(self):
        body = nir.move1(
            nir.Binary(nir.BinOp.ADD, nir.SVar("i"), nir.SVar("j")),
            nir.SVar("x"))
        do = nir.Do(nir.ProdDom((nir.SerialInterval(1, 2),
                                 nir.SerialInterval(1, 2))),
                    body, index_names=("i", "j"))
        out = unroll_do(do)
        assert len(out.actions) == 4
        first = out.actions[0].clauses[0].src
        assert first == nir.Binary(nir.BinOp.ADD, nir.int_const(1),
                                   nir.int_const(1))

    def test_unroll_respects_limit(self):
        do = nir.Do(nir.SerialInterval(1, 100), self.body_move(),
                    index_names=("i",))
        assert unroll_do(do, limit=10) is do

    def test_interchange(self):
        do = nir.Do(nir.ProdDom((nir.SerialInterval(1, 2),
                                 nir.SerialInterval(1, 3))),
                    nir.Skip(), index_names=("i", "j"))
        out = interchange(do, (1, 0))
        assert nir.extents(out.shape) == (3, 2)
        assert out.index_names == ("j", "i")

    def test_interchange_requires_product(self):
        do = nir.Do(nir.SerialInterval(1, 4), nir.Skip())
        with pytest.raises(nir.ShapeError):
            interchange(do, (0,))

    def test_strip_mine(self):
        blocks = strip_mine(nir.Interval(1, 10), 4)
        assert [nir.extents(b) for b in blocks] == [(4,), (4,), (2,)]
        assert blocks[0] == nir.Interval(1, 4)
        assert blocks[-1] == nir.Interval(9, 10)

    def test_strip_mine_preserves_seriality(self):
        blocks = strip_mine(nir.SerialInterval(1, 8), 3)
        assert all(isinstance(b, nir.SerialInterval) for b in blocks)

    def test_fuse_do_same_shape(self):
        a = nir.Do(nir.SerialInterval(1, 4),
                   nir.move1(nir.int_const(1), nir.SVar("x")),
                   index_names=("i",))
        b = nir.Do(nir.SerialInterval(1, 4),
                   nir.move1(nir.int_const(2), nir.SVar("y")),
                   index_names=("i",))
        fused = fuse_do(a, b)
        assert fused is not None
        assert len(fused.body.actions) == 2

    def test_fuse_do_renames_indices(self):
        a = nir.Do(nir.SerialInterval(1, 4),
                   nir.move1(nir.SVar("i"), nir.SVar("x")),
                   index_names=("i",))
        b = nir.Do(nir.SerialInterval(1, 4),
                   nir.move1(nir.SVar("j"), nir.SVar("y")),
                   index_names=("j",))
        fused = fuse_do(a, b)
        assert "j" not in nir.scalar_vars(fused.body.actions[1].clauses[0].src)

    def test_fuse_do_different_shapes_none(self):
        a = nir.Do(nir.SerialInterval(1, 4), nir.Skip())
        b = nir.Do(nir.SerialInterval(1, 5), nir.Skip())
        assert fuse_do(a, b) is None
