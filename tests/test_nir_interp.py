"""The NIR abstract-machine interpreter: the mid-level oracle.

All three executable semantics must agree on every program: the AST
reference interpreter, the NIR interpreter (on both lowered and
optimized NIR), and the compiled machine simulation.
"""

import numpy as np
import pytest

from repro.driver.compiler import compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.lowering import check_program, lower_program
from repro.machine import Machine, slicewise_model
from repro.nir.interp import InterpError, run_nir
from repro.programs import ALL_KERNELS
from repro.programs.swe import swe_source
from repro.transform import optimize


def triangulate(src, rtol=1e-9):
    unit = parse_program(src)
    ref = run_reference(unit)
    lowered = lower_program(unit)
    check_program(lowered.nir, lowered.env)
    nir_lowered = run_nir(lowered.nir, lowered.env)
    optimized = optimize(lowered)
    nir_optimized = run_nir(optimized.nir, optimized.env)
    compiled = compile_source(src).run(Machine(slicewise_model(64)))
    for label, result in (("nir-lowered", nir_lowered),
                          ("nir-optimized", nir_optimized),
                          ("compiled", compiled)):
        for name, expected in ref.arrays.items():
            np.testing.assert_allclose(
                result.arrays[name], expected, rtol=rtol, atol=1e-12,
                err_msg=f"{label}: array '{name}'")
    return ref, nir_lowered, nir_optimized, compiled


class TestTriangulation:
    @pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
    def test_kernels(self, kernel):
        triangulate(ALL_KERNELS[kernel]())

    def test_swe(self):
        triangulate(swe_source(16, 2))

    def test_scalar_state_agrees(self):
        src = ("integer a(8)\ninteger s, t\n"
               "forall (i=1:8) a(i) = i\n"
               "s = sum(a)\nt = s * 2\nprint *, t\nend")
        ref, nl, no, comp = triangulate(src)
        assert nl.scalars["t"] == ref.scalars["t"] == 72
        assert nl.output == ref.output


class TestInterpreterDetails:
    def run_src(self, src, optimized=False):
        lowered = lower_program(parse_program(src))
        check_program(lowered.nir, lowered.env)
        program = optimize(lowered).nir if optimized else lowered.nir
        env = lowered.env
        return run_nir(program, env)

    def test_masked_move(self):
        out = self.run_src(
            "integer a(6)\nforall (i=1:6) a(i) = i\n"
            "where (a > 3) a = 0\nend")
        np.testing.assert_array_equal(out.arrays["a"], [1, 2, 3, 0, 0, 0])

    def test_serial_do_executes_in_order(self):
        out = self.run_src(
            "integer a(5)\ninteger i\na(1) = 1\n"
            "do 1 i=2,5\na(i) = a(i-1) * 3\n1 continue\nend")
        np.testing.assert_array_equal(out.arrays["a"],
                                      [1, 3, 9, 27, 81])

    def test_while_and_if(self):
        out = self.run_src(
            "integer x\nx = 1\n"
            "do while (x < 10)\nx = x * 2\nend do\n"
            "if (x > 10) then\nx = -x\nend if\nend")
        assert out.scalars["x"] == -16

    def test_stop(self):
        out = self.run_src("integer x\nx = 1\nstop\nx = 2\nend")
        assert out.scalars["x"] == 1

    def test_print_captured(self):
        out = self.run_src("integer x\nx = 7\nprint *, x, x+1\nend")
        assert out.output == ["7 8"]

    def test_inputs_override(self):
        lowered = lower_program(parse_program(
            "integer a(3), b(3)\nb = a * 2\nend"))
        out = run_nir(lowered.nir, lowered.env,
                      inputs={"a": np.array([1, 2, 3])})
        np.testing.assert_array_equal(out.arrays["b"], [2, 4, 6])

    def test_scatter_through_gather_target(self):
        # The optimized Figure 9 diagonal copy runs via the NIR
        # interpreter's scatter path.
        out = self.run_src(
            "integer a(4,4), c(4)\ninteger i\n"
            "forall (i=1:4, j=1:4) a(i,j) = i*10 + j\n"
            "do 1 i=1,4\nc(i) = a(i,i)\n1 continue\nend",
            optimized=True)
        np.testing.assert_array_equal(out.arrays["c"], [11, 22, 33, 44])

    def test_do_exit_value_matches_fortran(self):
        out = self.run_src(
            "integer a(4)\ninteger i\n"
            "do 1 i=1,4\na(i) = 0\n1 continue\nprint *, i\nend")
        assert out.output == ["5"]
