"""Parser tests: declarations, statements, expressions, paper examples."""

import pytest

from repro.frontend import ast_nodes as A
from repro.frontend.parser import (
    ParseError,
    parse_expression,
    parse_program,
    parse_statements,
)


class TestProgramStructure:
    def test_program_unit_name(self):
        unit = parse_program("program foo\nend program foo")
        assert unit.name == "foo"
        assert unit.body == ()

    def test_bare_end(self):
        unit = parse_program("x = 1\nend")
        assert unit.name == "main"
        assert len(unit.body) == 1

    def test_end_program_without_name(self):
        unit = parse_program("program p\nend program")
        assert unit.name == "p"

    def test_declarations_precede_statements(self):
        unit = parse_program("integer x\nx = 1\nend")
        assert len(unit.decls) == 1
        assert len(unit.body) == 1


class TestDeclarations:
    def test_old_style_array_decl(self):
        unit = parse_program("INTEGER K(128,64), L(128)\nend")
        decl = unit.decls[0]
        assert decl.base == "integer"
        assert decl.entities[0].name == "k"
        assert len(decl.entities[0].dims) == 2
        assert decl.entities[1].name == "l"

    def test_array_attribute(self):
        unit = parse_program("integer, array(32,32) :: A, B\nend")
        decl = unit.decls[0]
        assert len(decl.dims) == 2
        assert [e.name for e in decl.entities] == ["a", "b"]

    def test_dimension_attribute(self):
        unit = parse_program("real, dimension(10) :: x\nend")
        assert len(unit.decls[0].dims) == 1

    def test_double_precision(self):
        unit = parse_program("double precision m, n\nend")
        assert unit.decls[0].base == "double"

    def test_real_kind8_is_double(self):
        unit = parse_program("real(kind=8) :: x\nend")
        assert unit.decls[0].base == "double"

    def test_parameter_attribute(self):
        unit = parse_program("integer, parameter :: n = 64\nend")
        decl = unit.decls[0]
        assert decl.parameter
        assert decl.entities[0].init is not None

    def test_f77_parameter_statement(self):
        unit = parse_program("INTEGER N\nPARAMETER (N=64)\nx = 1\nend")
        assert unit.decls[0].parameter
        assert isinstance(unit.decls[0].entities[0].init, A.IntLit)

    def test_logical_decl(self):
        unit = parse_program("logical flag\nend")
        assert unit.decls[0].base == "logical"

    def test_entity_with_own_dims(self):
        unit = parse_program("integer :: a(5), b\nend")
        assert unit.decls[0].entities[0].dims
        assert not unit.decls[0].entities[1].dims


class TestStatements:
    def test_simple_assignment(self):
        (stmt,) = parse_statements("x = 1 + 2")
        assert isinstance(stmt, A.Assignment)
        assert isinstance(stmt.target, A.VarRef)

    def test_array_element_assignment(self):
        (stmt,) = parse_statements("a(i, j) = 0")
        assert isinstance(stmt.target, A.ArrayRef)

    def test_section_assignment(self):
        (stmt,) = parse_statements("k(32:64,:) = k(32:64,:)**2")
        subs = stmt.target.subscripts
        assert isinstance(subs[0], A.SectionRange)
        assert isinstance(subs[1], A.SectionRange)
        assert subs[1].lo is None and subs[1].hi is None

    def test_strided_section(self):
        (stmt,) = parse_statements("b(1:32:2,:) = 0")
        rng = stmt.target.subscripts[0]
        assert isinstance(rng.stride, A.IntLit)
        assert rng.stride.value == 2

    def test_labelled_do_with_continue(self):
        (loop,) = parse_statements(
            "DO 10 I=1,128\n  L(I) = 6\n10 CONTINUE")
        assert isinstance(loop, A.DoLoop)
        assert loop.var == "i"
        assert len(loop.body) == 1

    def test_nested_labelled_dos(self):
        (outer,) = parse_statements(
            "DO 10 I=1,4\nDO 20 J=1,4\nK(I,J)=0\n20 CONTINUE\n10 CONTINUE")
        assert isinstance(outer.body[0], A.DoLoop)

    def test_block_do_end_do(self):
        (loop,) = parse_statements("do i = 1, 10, 2\n x = i\nend do")
        assert isinstance(loop.step, A.IntLit)
        assert loop.step.value == 2

    def test_do_while(self):
        (loop,) = parse_statements("do while (x < 4)\n x = x + 1\nend do")
        assert isinstance(loop, A.DoWhile)

    def test_missing_do_terminator_raises(self):
        with pytest.raises(ParseError):
            parse_statements("DO 10 I=1,4\nx = 1")

    def test_if_then_else_chain(self):
        (stmt,) = parse_statements(
            "if (a > 1) then\n x=1\nelse if (a > 0) then\n x=2\n"
            "else\n x=3\nend if")
        assert isinstance(stmt, A.IfConstruct)
        assert len(stmt.arms) == 2
        assert len(stmt.else_body) == 1

    def test_logical_if_one_liner(self):
        (stmt,) = parse_statements("if (x == 0) y = 1")
        assert isinstance(stmt, A.IfConstruct)
        assert stmt.else_body == ()

    def test_endif_one_word(self):
        (stmt,) = parse_statements("if (a > 1) then\n x=1\nendif")
        assert isinstance(stmt, A.IfConstruct)

    def test_where_construct(self):
        (stmt,) = parse_statements(
            "where (a > 3)\n a = a - 1\nelsewhere\n a = 0\nend where")
        assert isinstance(stmt, A.WhereConstruct)
        assert len(stmt.body) == 1
        assert len(stmt.elsewhere) == 1

    def test_where_statement_form(self):
        (stmt,) = parse_statements("where (m) a = 0")
        assert isinstance(stmt, A.WhereConstruct)
        assert stmt.elsewhere == ()

    def test_where_rejects_non_assignment(self):
        with pytest.raises(ParseError):
            parse_statements("where (m)\n do i=1,2\n end do\nend where")

    def test_forall_statement(self):
        (stmt,) = parse_statements("FORALL (i=1:32, j=1:32) A(i,j) = i+j")
        assert isinstance(stmt, A.ForallStmt)
        assert [t.var for t in stmt.triplets] == ["i", "j"]

    def test_forall_with_stride(self):
        (stmt,) = parse_statements("forall (i=1:9:2) a(i) = 0")
        assert stmt.triplets[0].stride.value == 2

    def test_forall_with_mask(self):
        (stmt,) = parse_statements("forall (i=1:9, i > 2) a(i) = 0")
        assert stmt.mask is not None

    def test_print_statement(self):
        (stmt,) = parse_statements("print *, x, y + 1")
        assert isinstance(stmt, A.PrintStmt)
        assert len(stmt.items) == 2

    def test_stop_statement(self):
        (stmt,) = parse_statements("stop")
        assert isinstance(stmt, A.StopStmt)

    def test_call_statement(self):
        (stmt,) = parse_statements("call foo(1, x)")
        assert isinstance(stmt, A.CallStmt)
        assert stmt.name == "foo"
        assert len(stmt.args) == 2


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.BinExpr) and e.op == "+"
        assert isinstance(e.right, A.BinExpr) and e.right.op == "*"

    def test_power_right_associative(self):
        e = parse_expression("2 ** 3 ** 2")
        assert e.op == "**"
        assert isinstance(e.right, A.BinExpr) and e.right.op == "**"

    def test_unary_minus_binds_looser_than_power(self):
        e = parse_expression("-a**2")
        assert isinstance(e, A.UnExpr) and e.op == "-"
        assert isinstance(e.operand, A.BinExpr) and e.operand.op == "**"

    def test_relational_below_arith(self):
        e = parse_expression("a + 1 > b * 2")
        assert e.op == ">"

    def test_logical_precedence(self):
        e = parse_expression("a .or. b .and. c")
        assert e.op == ".or."
        assert e.right.op == ".and."

    def test_not_precedence(self):
        e = parse_expression(".not. a .and. b")
        assert e.op == ".and."
        assert isinstance(e.left, A.UnExpr)

    def test_parentheses(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_keyword_arguments(self):
        e = parse_expression("cshift(v, dim=1, shift=-1)")
        assert isinstance(e, A.ArrayRef)
        kwargs = [a for a in e.subscripts if isinstance(a, A.KeywordArg)]
        assert {k.name for k in kwargs} == {"dim", "shift"}

    def test_nested_calls(self):
        e = parse_expression("cshift(cshift(p, 1, 1), 1, 2)")
        assert isinstance(e.subscripts[0], A.ArrayRef)

    def test_double_literal_flag(self):
        e = parse_expression("1.5d0")
        assert isinstance(e, A.RealLit) and e.double

    def test_logical_literal(self):
        e = parse_expression(".true.")
        assert isinstance(e, A.LogicalLit) and e.value is True

    def test_eqv_operator(self):
        e = parse_expression("a .eqv. b")
        assert e.op == ".eqv."

    def test_dot_relational_forms(self):
        e = parse_expression("x .ge. y")
        assert e.op == ">="

    def test_error_position(self):
        with pytest.raises(ParseError, match="line"):
            parse_expression("1 +")


class TestPaperExamples:
    """The source fragments shown in the paper parse intact."""

    def test_section_21_deck(self):
        unit = parse_program("""
INTEGER K(128,64), L(128)
DO 10 I=1,128
   L(I) = 6
   DO 20 J=1,64
      K(I,J) = 2*K(I,J) + 5
20 CONTINUE
10 CONTINUE
END
""")
        assert isinstance(unit.body[0], A.DoLoop)

    def test_section_21_f90_replacement(self):
        unit = parse_program("INTEGER K(128,64), L(128)\nL = 6\n"
                             "K = 2*K + 5\nEND")
        assert len(unit.body) == 2

    def test_section_21_sections(self):
        unit = parse_program(
            "INTEGER K(128,64), L(128)\n"
            "L(32:64) = L(96:128)\nK(32:64,:) = K(32:64,:)**2\nEND")
        assert len(unit.body) == 2

    def test_figure_7_forall(self):
        unit = parse_program(
            "INTEGER, ARRAY(32,32) :: A\n"
            "FORALL (i=1:32, j=1:32) A(i,j) = i+j\nEND")
        assert isinstance(unit.body[0], A.ForallStmt)

    def test_figure_12_swe_excerpt(self):
        unit = parse_program(
            "double precision, array(8,8) :: z, v, u, p, tmp\n"
            "double precision fsdx, fsdy\n"
            "z = (fsdx*(v - CSHIFT(v, DIM=1, SHIFT=-1)) "
            "- fsdy*(u - CSHIFT(u, DIM=2, SHIFT=-1))) / (p + tmp)\nend")
        assert isinstance(unit.body[0], A.Assignment)
