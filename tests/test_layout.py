"""Explicit data layout (§5.3.2) and the CLI driver."""

import numpy as np
import pytest

from repro.driver.cli import main as cli_main
from repro.driver.compiler import compile_source
from repro.driver.reference import run_reference
from repro.frontend.directives import (
    DirectiveError,
    parse_layout_directives,
)
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model
from repro.machine.geometry import make_geometry


class TestDirectiveParsing:
    def test_basic(self):
        out = parse_layout_directives(
            "!layout: a(news, serial)\ninteger a(4,4)\nend")
        assert out == {"a": ("news", "serial")}

    def test_colon_prefixed_modes(self):
        out = parse_layout_directives("!layout: b(:serial, :news)")
        assert out == {"b": ("serial", "news")}

    def test_case_insensitive(self):
        out = parse_layout_directives("!LAYOUT: C(NEWS)")
        assert out == {"c": ("news",)}

    def test_unknown_mode_rejected(self):
        with pytest.raises(DirectiveError, match="unknown layout mode"):
            parse_layout_directives("!layout: a(block)")

    def test_non_directive_comments_ignored(self):
        assert parse_layout_directives("! a comment\nx = 1") == {}


class TestGeometryModes:
    def test_serial_axis_unsplit(self):
        g = make_geometry((64, 64), 64, ("news", "serial"))
        assert g.pe_grid[1] == 1
        assert g.pe_grid[0] == 64

    def test_all_news_matches_default(self):
        assert make_geometry((64, 64), 64, ("news", "news")) \
            == make_geometry((64, 64), 64)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            make_geometry((64, 64), 64, ("news",))


class TestLayoutEffects:
    SRC = """
!layout: t(news, serial)
program stencil
double precision, array(128,128) :: t, u
forall (i=1:128, j=1:128) t(i,j) = i + j * 0.5d0
u = t + cshift(t, 1, 2) + cshift(t, -1, 2)
end program stencil
"""
    SRC_DEFAULT = SRC.replace("!layout: t(news, serial)\n", "")

    def test_semantics_unchanged(self):
        res = compile_source(self.SRC).run(Machine(slicewise_model()))
        ref = run_reference(parse_program(self.SRC))
        np.testing.assert_allclose(res.arrays["u"], ref.arrays["u"])

    def test_serial_axis_communication_free(self):
        # Shifts run along axis 2, which the directive keeps on-PE:
        # all CSHIFT traffic becomes local subgrid copies.
        with_layout = compile_source(self.SRC).run(
            Machine(slicewise_model()))
        default = compile_source(self.SRC_DEFAULT).run(
            Machine(slicewise_model()))
        assert with_layout.stats.comm_cycles < default.stats.comm_cycles

    def test_alloc_carries_layout(self):
        from repro.runtime import host as h
        exe = compile_source(self.SRC)
        allocs = {op.name: op.layout for op in exe.host_program.ops
                  if isinstance(op, h.Alloc)}
        assert allocs["t"] == ("news", "serial")
        assert allocs["u"] is None


class TestCli:
    DEMO = """
program demo
double precision a(32)
double precision s
forall (i=1:32) a(i) = i * 0.5d0
s = sum(a)
print *, s
end program demo
"""

    @pytest.fixture
    def demo_file(self, tmp_path):
        f = tmp_path / "demo.f90"
        f.write_text(self.DEMO)
        return str(f)

    def test_run_prints_program_output(self, demo_file, capsys):
        assert cli_main(["run", demo_file, "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "264.0" in out

    def test_run_stats_flag(self, demo_file, capsys):
        assert cli_main(["run", demo_file, "--pes", "64", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "breakdown:" in err

    def test_compile_emits_peac(self, demo_file, capsys):
        assert cli_main(["compile", demo_file]) == 0
        out = capsys.readouterr().out
        assert "jnz ac2" in out
        assert "computation blocks" in out

    def test_compile_emit_nir(self, demo_file, capsys):
        assert cli_main(["compile", demo_file, "--emit", "nir"]) == 0
        out = capsys.readouterr().out
        assert "WITH_DOMAIN" in out

    def test_compile_emit_host(self, demo_file, capsys):
        assert cli_main(["compile", demo_file, "--emit", "host"]) == 0
        out = capsys.readouterr().out
        assert "HOST PROGRAM" in out

    def test_compare_table(self, demo_file, capsys):
        assert cli_main(["compare", demo_file, "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "Fortran-90-Y" in out
        assert "CM Fortran v1.1" in out

    def test_missing_file_exit_code(self, capsys):
        assert cli_main(["run", "/nonexistent.f90"]) == 2

    def test_compile_error_exit_code(self, tmp_path, capsys):
        f = tmp_path / "bad.f90"
        f.write_text("integer a(4)\na = undeclared_thing + 1\nend")
        assert cli_main(["compile", str(f)]) == 1
        assert "repro:" in capsys.readouterr().err

    def test_neighborhood_flag(self, tmp_path, capsys):
        f = tmp_path / "st.f90"
        f.write_text("double precision t(16,16), u(16,16)\n"
                     "u = t + cshift(t, 1, 1)\nend")
        assert cli_main(["compile", str(f), "--neighborhood",
                         "--emit", "host"]) == 0
        out = capsys.readouterr().out
        assert "cm_rt" not in out  # the shift became a halo argument
