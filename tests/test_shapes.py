"""Shape-domain tests: constructors, algebra, conformance, iteration."""

import pytest

from repro import nir
from repro.nir.shapes import ShapeError


class TestConstructors:
    def test_point(self):
        assert nir.Point(5).value == 5
        assert str(nir.Point(5)) == "point 5"

    def test_interval_str(self):
        assert str(nir.Interval(1, 32)) == "interval(point 1..point 32)"

    def test_strided_interval_str(self):
        assert "by 2" in str(nir.Interval(1, 31, 2))

    def test_serial_interval(self):
        s = nir.SerialInterval(1, 8)
        assert "serial_interval" in str(s)

    def test_zero_stride_rejected(self):
        with pytest.raises(ShapeError):
            nir.Interval(1, 8, 0)

    def test_prod_dom_needs_dims(self):
        with pytest.raises(ShapeError):
            nir.ProdDom(())

    def test_prod_dom_of_shapes_only(self):
        with pytest.raises(ShapeError):
            nir.ProdDom((3,))  # type: ignore[arg-type]

    def test_domain_ref(self):
        assert str(nir.DomainRef("alpha")) == "domain 'alpha'"


class TestResolve:
    def test_resolve_plain(self):
        s = nir.Interval(1, 4)
        assert nir.resolve(s) is s

    def test_resolve_ref(self):
        env = {"alpha": nir.Interval(1, 4)}
        assert nir.resolve(nir.DomainRef("alpha"), env) == nir.Interval(1, 4)

    def test_resolve_chained_refs(self):
        env = {"a": nir.DomainRef("b"), "b": nir.Interval(1, 2)}
        assert nir.resolve(nir.DomainRef("a"), env) == nir.Interval(1, 2)

    def test_resolve_inside_prod(self):
        env = {"a": nir.Interval(1, 3)}
        s = nir.ProdDom((nir.DomainRef("a"), nir.Interval(1, 2)))
        resolved = nir.resolve(s, env)
        assert resolved.dims[0] == nir.Interval(1, 3)

    def test_unbound_domain_raises(self):
        with pytest.raises(ShapeError, match="unbound"):
            nir.resolve(nir.DomainRef("ghost"), {})

    def test_cyclic_domain_raises(self):
        env = {"a": nir.DomainRef("b"), "b": nir.DomainRef("a")}
        with pytest.raises(ShapeError, match="cyclic"):
            nir.resolve(nir.DomainRef("a"), env)


class TestExtentsAndSize:
    def test_interval_extent(self):
        assert nir.extents(nir.Interval(1, 128)) == (128,)

    def test_offset_interval_extent(self):
        assert nir.extents(nir.Interval(32, 64)) == (33,)

    def test_strided_extent(self):
        assert nir.extents(nir.Interval(1, 31, 2)) == (16,)
        assert nir.extents(nir.Interval(2, 32, 2)) == (16,)

    def test_negative_stride_extent(self):
        assert nir.extents(nir.Interval(10, 1, -3)) == (4,)

    def test_prod_extents(self):
        s = nir.ProdDom((nir.Interval(1, 128), nir.Interval(1, 64)))
        assert nir.extents(s) == (128, 64)
        assert nir.size(s) == 8192

    def test_point_extent(self):
        assert nir.extents(nir.Point(7)) == (1,)

    def test_rank(self):
        s = nir.ProdDom((nir.Interval(1, 4), nir.Interval(1, 4),
                         nir.Point(2)))
        assert nir.rank(s) == 3

    def test_nested_prod_flattens(self):
        inner = nir.ProdDom((nir.Interval(1, 2), nir.Interval(1, 3)))
        outer = nir.ProdDom((inner, nir.Interval(1, 4)))
        assert nir.extents(outer) == (2, 3, 4)
        assert nir.rank(outer) == 3


class TestPoints:
    def test_interval_points(self):
        assert list(nir.points(nir.Interval(2, 6, 2))) == [(2,), (4,), (6,)]

    def test_prod_points_row_major(self):
        s = nir.ProdDom((nir.Interval(1, 2), nir.Interval(1, 2)))
        assert list(nir.points(s)) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_point_points(self):
        assert list(nir.points(nir.Point(9))) == [(9,)]


class TestSerialParallel:
    def test_parallel_interval(self):
        assert nir.is_parallel(nir.Interval(1, 4))
        assert not nir.is_serial(nir.Interval(1, 4))

    def test_serial_interval(self):
        assert nir.is_serial(nir.SerialInterval(1, 4))

    def test_mixed_product_is_serial(self):
        s = nir.ProdDom((nir.SerialInterval(1, 4), nir.Interval(1, 4)))
        assert nir.is_serial(s)

    def test_serialized(self):
        s = nir.serialized(nir.Interval(1, 4))
        assert isinstance(s, nir.SerialInterval)

    def test_parallelized(self):
        s = nir.parallelized(
            nir.ProdDom((nir.SerialInterval(1, 4), nir.Interval(1, 2))))
        assert nir.is_parallel(s)


class TestConformance:
    def test_same_extents_conform(self):
        assert nir.conformable(nir.Interval(1, 8), nir.Interval(3, 10))

    def test_different_extents_do_not(self):
        assert not nir.conformable(nir.Interval(1, 8), nir.Interval(1, 9))

    def test_strided_section_conforms_with_dense(self):
        assert nir.conformable(nir.Interval(1, 31, 2), nir.Interval(1, 16))

    def test_same_domain_stronger(self):
        a = nir.Interval(1, 8)
        b = nir.Interval(3, 10)
        assert nir.conformable(a, b)
        assert not nir.same_domain(a, b)

    def test_same_domain_through_refs(self):
        env = {"alpha": nir.Interval(1, 8)}
        assert nir.same_domain(nir.DomainRef("alpha"), nir.Interval(1, 8),
                               env)


class TestConvenience:
    def test_interval_of_extent(self):
        assert nir.interval_of_extent(5) == nir.Interval(1, 5)

    def test_interval_of_extent_serial(self):
        assert isinstance(nir.interval_of_extent(5, serial=True),
                          nir.SerialInterval)

    def test_shape_of_extents_1d(self):
        assert nir.shape_of_extents((7,)) == nir.Interval(1, 7)

    def test_shape_of_extents_2d(self):
        s = nir.shape_of_extents((2, 3))
        assert isinstance(s, nir.ProdDom)
        assert nir.extents(s) == (2, 3)

    def test_bad_extent_rejected(self):
        with pytest.raises(ShapeError):
            nir.interval_of_extent(0)
