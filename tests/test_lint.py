"""The ``repro lint`` engine: golden bad-program cases, the exit-code
contract, output formats, and the CLI surface."""

from __future__ import annotations

import glob
import json
import re

import pytest

from repro.analysis.analyze import analyze_file
from repro.analysis.lint import (LintResult, format_text, lint_file,
                                 lint_source)
from repro.driver import cli

CASES = sorted(glob.glob("tests/lint_cases/*.f90"))

EXPECT = re.compile(r"!\s*expect:\s*(\w+)(?:\s*@(\d+))?")

CLEAN = """
program clean
  real :: a(8), b(8)
  a = 1.0
  b = a * 2.0
  a = b + a
  print *, a
end program clean
"""

WARN_ONLY = """
program warn
  real :: unused(4)
  real :: a(8)
  a = 1.0
  print *, a
end program warn
"""


def expectations(path: str) -> list[tuple[str, int | None]]:
    with open(path) as f:
        text = f.read()
    found = [(code, int(line) if line else None)
             for code, line in EXPECT.findall(text)]
    assert found, f"{path} has no '! expect: CODE @line' marker"
    return found


# ---------------------------------------------------------------------------
# Golden cases
# ---------------------------------------------------------------------------


def test_enough_golden_cases():
    assert len(CASES) >= 10


@pytest.mark.parametrize("path", CASES)
def test_golden_case(path):
    # The analyze entry is a superset of lint: F/S/W plus R6xx/C7xx.
    result = analyze_file(path)
    assert result.internal_error is None
    got = [(d.code, d.line) for d in result.diagnostics]
    for code, line in expectations(path):
        assert any(c == code and (line is None or l == line)
                   for c, l in got), (
            f"{path}: expected {code}"
            + (f" at line {line}" if line else "")
            + f", got {got}")
    # Every error case must exit 2; warning-only cases exit 1.
    expected_exit = 2 if result.errors else 1
    assert result.exit_code() == expected_exit


@pytest.mark.parametrize("path", CASES)
def test_golden_case_locations_are_real(path):
    with open(path) as f:
        n_lines = len(f.read().splitlines())
    for d in analyze_file(path).diagnostics:
        assert 1 <= d.line <= n_lines
        assert d.file == path


def test_diagnostics_are_sorted_deterministically():
    # (file, line, col, code) — the emission order golden diffs key on.
    for path in CASES:
        for result in (lint_file(path), analyze_file(path)):
            keys = [(d.file or "", d.line, d.col, d.code)
                    for d in result.diagnostics]
            assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Exit-code contract: 0 clean, 1 warnings, 2 errors (or warnings --strict)
# ---------------------------------------------------------------------------


class TestExitContract:
    def test_clean_is_zero(self):
        result = lint_source(CLEAN)
        assert result.diagnostics == []
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 0

    def test_warnings_only_is_one(self):
        result = lint_source(WARN_ONLY)
        assert result.errors == []
        assert [d.code for d in result.warnings] == ["W203"]
        assert result.exit_code() == 1

    def test_strict_promotes_warnings(self):
        assert lint_source(WARN_ONLY).exit_code(strict=True) == 2

    def test_errors_are_two(self):
        result = lint_source("program p\n  a = = 1\nend program p\n")
        assert result.errors
        assert result.exit_code() == 2
        assert result.exit_code(strict=True) == 2

    def test_example_programs_are_clean_of_errors(self):
        for path in sorted(glob.glob("examples/*.f90")):
            assert lint_file(path).exit_code() < 2, path

    def test_never_raises_on_garbage(self):
        for source in ("", "@@@", "program p", "end", "\x00\x01"):
            assert isinstance(lint_source(source), LintResult)


# ---------------------------------------------------------------------------
# Output formats
# ---------------------------------------------------------------------------


class TestFormats:
    def test_text_format(self):
        path = "tests/lint_cases/undeclared.f90"
        text = format_text(lint_file(path))
        assert path in text
        assert "[S102]" in text
        assert re.search(r"\d+ error\(s\), \d+ warning\(s\)", text)

    def test_to_dict_shape(self):
        d = lint_file("tests/lint_cases/shape_mismatch.f90").to_dict()
        assert d["file"] == "tests/lint_cases/shape_mismatch.f90"
        assert d["errors"] >= 1
        for diag in d["diagnostics"]:
            assert {"code", "severity", "message", "line", "col",
                    "file"} <= set(diag)

    def test_severities(self):
        result = lint_source(WARN_ONLY)
        assert all(d.to_dict()["severity"] == "warning"
                   for d in result.diagnostics)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.f90"
        f.write_text(CLEAN)
        assert cli.main(["lint", str(f)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_error_file_exits_two(self, capsys):
        rc = cli.main(["lint", "tests/lint_cases/undeclared.f90"])
        assert rc == 2
        assert "[S102]" in capsys.readouterr().out

    def test_warning_file_exits_one(self, tmp_path):
        f = tmp_path / "warn.f90"
        f.write_text(WARN_ONLY)
        assert cli.main(["lint", str(f)]) == 1

    def test_strict_flag(self, tmp_path):
        f = tmp_path / "warn.f90"
        f.write_text(WARN_ONLY)
        assert cli.main(["lint", "--strict", str(f)]) == 2

    def test_multiple_files_worst_exit_wins(self, tmp_path):
        clean = tmp_path / "clean.f90"
        clean.write_text(CLEAN)
        rc = cli.main(["lint", str(clean),
                       "tests/lint_cases/undeclared.f90"])
        assert rc == 2

    def test_json_format(self, capsys):
        path = "tests/lint_cases/shape_mismatch.f90"
        rc = cli.main(["lint", "--format=json", path])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["file"] == path
        assert payload["exit_code"] == 2
        assert any(d["code"] == "S104" for d in payload["diagnostics"])

    def test_json_format_many_files(self, tmp_path, capsys):
        f = tmp_path / "clean.f90"
        f.write_text(CLEAN)
        cli.main(["lint", "--format=json", str(f),
                  "tests/lint_cases/undeclared.f90"])
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2

    def test_stdin(self, monkeypatch, capsys):
        import io
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(CLEAN))
        assert cli.main(["lint", "-"]) == 0
        assert "<stdin>" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Service op
# ---------------------------------------------------------------------------


def test_service_lint_op():
    from repro.service.jobs import execute_request

    r = execute_request({"op": "lint",
                         "file": "tests/lint_cases/undeclared.f90"})
    assert r["ok"]
    assert r["exit_code"] == 2
    assert any(d["code"] == "S102" for d in r["diagnostics"])

    r = execute_request({"op": "lint", "source": WARN_ONLY,
                         "strict": True})
    assert r["exit_code"] == 2
