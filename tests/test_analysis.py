"""Type/shape inference (the static shapechecking engine) and intrinsics
catalogue tests."""

import pytest

from repro import nir
from repro.frontend import intrinsics as intr
from repro.frontend.parser import parse_program
from repro.lowering import build_environment
from repro.lowering.analysis import Inference

SRC = """
integer, parameter :: n = 8
integer k(8,4)
double precision x(8)
double precision t
logical m(8)
integer i
end
"""


@pytest.fixture
def inf():
    env = build_environment(parse_program(SRC))
    return Inference(env)


class TestScalarInference:
    def test_constant(self, inf):
        info = inf.infer(nir.int_const(3))
        assert info.elem == nir.INTEGER_32 and info.is_scalar

    def test_svar(self, inf):
        info = inf.infer(nir.SVar("t"))
        assert info.elem == nir.FLOAT_64 and info.is_scalar

    def test_svar_of_array_rejected(self, inf):
        with pytest.raises(nir.TypeError_):
            inf.infer(nir.SVar("k"))

    def test_arith_promotion(self, inf):
        info = inf.infer(nir.Binary(nir.BinOp.ADD, nir.SVar("i"),
                                    nir.SVar("t")))
        assert info.elem == nir.FLOAT_64

    def test_relational_yields_logical(self, inf):
        info = inf.infer(nir.Binary(nir.BinOp.GT, nir.SVar("i"),
                                    nir.int_const(0)))
        assert info.elem == nir.LOGICAL_32

    def test_logical_op_requires_logical(self, inf):
        with pytest.raises(nir.TypeError_):
            inf.infer(nir.Binary(nir.BinOp.AND, nir.SVar("i"),
                                 nir.SVar("i")))

    def test_arith_on_logical_rejected(self, inf):
        with pytest.raises(nir.TypeError_):
            inf.infer(nir.Binary(nir.BinOp.ADD, nir.AVar("m"),
                                 nir.AVar("m")))

    def test_not_requires_logical(self, inf):
        with pytest.raises(nir.TypeError_):
            inf.infer(nir.Unary(nir.UnOp.NOT, nir.SVar("i")))

    def test_transcendental_promotes_int(self, inf):
        info = inf.infer(nir.Unary(nir.UnOp.SIN, nir.SVar("i")))
        assert info.elem == nir.FLOAT_64

    def test_conversions(self, inf):
        assert inf.infer(nir.Unary(nir.UnOp.TO_INT, nir.SVar("t"))).elem \
            == nir.INTEGER_32
        assert inf.infer(nir.Unary(nir.UnOp.TO_FLOAT32,
                                   nir.SVar("i"))).elem == nir.FLOAT_32


class TestShapeInference:
    def test_everywhere_shape(self, inf):
        info = inf.infer(nir.AVar("k"))
        assert nir.extents(info.shape, inf.domains) == (8, 4)

    def test_broadcast_scalar_array(self, inf):
        info = inf.infer(nir.Binary(nir.BinOp.MUL, nir.AVar("x"),
                                    nir.SVar("t")))
        assert nir.extents(info.shape, inf.domains) == (8,)

    def test_conforming_arrays(self, inf):
        info = inf.infer(nir.Binary(nir.BinOp.ADD, nir.AVar("x"),
                                    nir.AVar("x")))
        assert nir.extents(info.shape, inf.domains) == (8,)

    def test_nonconforming_rejected(self, inf):
        with pytest.raises(nir.ShapeError):
            inf.infer(nir.Binary(nir.BinOp.ADD, nir.AVar("x"),
                                 nir.AVar("k")))

    def test_section_shape(self, inf):
        field = nir.Subscript((
            nir.IndexRange(nir.int_const(2), nir.int_const(7), None),
            nir.int_const(1)))
        info = inf.infer(nir.AVar("k", field))
        assert nir.extents(info.shape, inf.domains) == (6,)

    def test_all_scalar_subscripts_scalar(self, inf):
        field = nir.Subscript((nir.int_const(1), nir.int_const(2)))
        info = inf.infer(nir.AVar("k", field))
        assert info.is_scalar

    def test_rank_mismatch(self, inf):
        with pytest.raises(nir.ShapeError):
            inf.infer(nir.AVar("k", nir.Subscript((nir.int_const(1),))))

    def test_gather_shape_is_region(self, inf):
        lu = nir.LocalUnder(nir.Interval(1, 4), 1)
        info = inf.infer(nir.AVar("k", nir.Subscript((lu, lu))))
        assert nir.extents(info.shape, inf.domains) == (4,)

    def test_gather_mixed_with_range_rejected(self, inf):
        lu = nir.LocalUnder(nir.Interval(1, 4), 1)
        field = nir.Subscript((nir.IndexRange(None, None), lu))
        with pytest.raises(nir.ShapeError):
            inf.infer(nir.AVar("k", field))

    def test_local_under_axis_bounds(self, inf):
        with pytest.raises(nir.ShapeError):
            inf.infer(nir.LocalUnder(nir.Interval(1, 4), 3))

    def test_cshift_preserves_shape(self, inf):
        call = nir.FcnCall("cshift", (nir.AVar("k"), nir.int_const(1),
                                      nir.int_const(2)))
        info = inf.infer(call)
        assert nir.extents(info.shape, inf.domains) == (8, 4)

    def test_transpose_swaps(self, inf):
        call = nir.FcnCall("transpose", (nir.AVar("k"),))
        info = inf.infer(call)
        assert nir.extents(info.shape, inf.domains) == (4, 8)

    def test_transpose_rank1_rejected(self, inf):
        with pytest.raises(nir.ShapeError):
            inf.infer(nir.FcnCall("transpose", (nir.AVar("x"),)))

    def test_spread_inserts_axis(self, inf):
        call = nir.FcnCall("spread", (nir.AVar("x"), nir.int_const(1),
                                      nir.int_const(3)))
        info = inf.infer(call)
        assert nir.extents(info.shape, inf.domains) == (3, 8)

    def test_full_reduction_scalar(self, inf):
        info = inf.infer(nir.FcnCall("sum", (nir.AVar("k"),)))
        assert info.is_scalar and info.elem == nir.INTEGER_32

    def test_dim_reduction_drops_axis(self, inf):
        info = inf.infer(nir.FcnCall("sum", (nir.AVar("k"),
                                             nir.int_const(1))))
        assert nir.extents(info.shape, inf.domains) == (4,)

    def test_count_yields_integer(self, inf):
        mask = nir.Binary(nir.BinOp.GT, nir.AVar("x"),
                          nir.float_const(0.0))
        info = inf.infer(nir.FcnCall("count", (mask,)))
        assert info.elem == nir.INTEGER_32 and info.is_scalar

    def test_any_yields_logical(self, inf):
        mask = nir.Binary(nir.BinOp.GT, nir.AVar("x"),
                          nir.float_const(0.0))
        assert inf.infer(nir.FcnCall("any", (mask,))).elem \
            == nir.LOGICAL_32

    def test_merge_combines(self, inf):
        call = nir.FcnCall("merge", (nir.AVar("x"), nir.AVar("x"),
                                     nir.AVar("m")))
        info = inf.infer(call)
        assert info.elem == nir.FLOAT_64
        assert nir.extents(info.shape, inf.domains) == (8,)

    def test_merge_mask_must_be_logical(self, inf):
        with pytest.raises(nir.TypeError_):
            inf.infer(nir.FcnCall("merge", (nir.AVar("x"), nir.AVar("x"),
                                            nir.AVar("x"))))

    def test_unknown_function_rejected(self, inf):
        with pytest.raises(nir.TypeError_):
            inf.infer(nir.FcnCall("mystery", (nir.AVar("x"),)))


class TestIntrinsicsCatalogue:
    def test_categories(self):
        assert intr.category_of("sin") == "elemental"
        assert intr.category_of("cshift") == "communication"
        assert intr.category_of("sum") == "reduction"
        assert intr.category_of("size") == "inquiry"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            intr.category_of("frobnicate")

    def test_is_intrinsic(self):
        assert intr.is_intrinsic("CSHIFT")
        assert intr.is_intrinsic("merge")
        assert not intr.is_intrinsic("myfunc")

    def test_normalize_args_positional(self):
        sig = intr.COMMUNICATION["cshift"]
        slots = intr.normalize_args(sig, ["a", "s"], {})
        assert slots == ["a", "s", None]

    def test_normalize_args_keywords(self):
        sig = intr.COMMUNICATION["cshift"]
        slots = intr.normalize_args(sig, ["a"], {"dim": 2, "shift": -1})
        assert slots == ["a", -1, 2]

    def test_normalize_args_duplicate_rejected(self):
        sig = intr.COMMUNICATION["cshift"]
        with pytest.raises(ValueError, match="duplicate"):
            intr.normalize_args(sig, ["a", "s"], {"shift": 1})

    def test_normalize_args_unknown_keyword(self):
        sig = intr.COMMUNICATION["cshift"]
        with pytest.raises(ValueError, match="unknown keyword"):
            intr.normalize_args(sig, ["a", 1], {"axis": 1})

    def test_normalize_args_missing_required(self):
        sig = intr.COMMUNICATION["cshift"]
        with pytest.raises(ValueError, match="missing"):
            intr.normalize_args(sig, ["a"], {"dim": 1})

    def test_normalize_args_too_many(self):
        sig = intr.COMMUNICATION["transpose"]
        with pytest.raises(ValueError, match="too many"):
            intr.normalize_args(sig, ["a", "b"], {})
