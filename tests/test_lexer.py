"""Lexer tests: tokens, literals, continuations, comments."""

import pytest

from repro.frontend.lexer import LexError, tokenize
from repro.frontend.tokens import TokKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind not in
            (TokKind.NEWLINE, TokKind.EOF)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind not in
            (TokKind.NEWLINE, TokKind.EOF)]


class TestBasicTokens:
    def test_identifiers(self):
        assert texts("foo Bar_2 _x") == ["foo", "Bar_2", "_x"]
        assert all(k is TokKind.IDENT for k in kinds("foo Bar_2 _x"))

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokKind.INT
        assert toks[0].text == "42"

    def test_real_literal_plain(self):
        assert tokenize("3.25")[0].kind is TokKind.REAL

    def test_real_literal_exponent(self):
        assert tokenize("1.5e-3")[0].kind is TokKind.REAL
        assert tokenize("2E6")[0].kind is TokKind.REAL

    def test_double_literal(self):
        assert tokenize("1.0d0")[0].kind is TokKind.DREAL
        assert tokenize("4D-2")[0].kind is TokKind.DREAL

    def test_string_literal(self):
        toks = tokenize("'hello world'")
        assert toks[0].kind is TokKind.STRING
        assert toks[0].text == "hello world"

    def test_double_quoted_string(self):
        assert tokenize('"abc"')[0].text == "abc"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_logical_literals(self):
        toks = tokenize(".true. .false.")
        assert [t.kind for t in toks[:2]] == [TokKind.LOGICAL] * 2
        assert [t.text for t in toks[:2]] == ["true", "false"]


class TestOperators:
    def test_multichar_operators(self):
        assert texts("a ** b == c /= d") == \
            ["a", "**", "b", "==", "c", "/=", "d"]

    def test_double_colon(self):
        assert "::" in texts("integer :: x")

    def test_dot_operators_canonicalized(self):
        assert texts("a .eq. b") == ["a", "==", "b"]
        assert texts("a .GE. b") == ["a", ">=", "b"]
        assert texts("a .and. b .or. c") == ["a", ".and.", "b", ".or.", "c"]

    def test_dot_not(self):
        assert ".not." in texts(".not. x")

    def test_relational_le(self):
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_number_adjacent_dot_operator(self):
        # "1.eq.2" must lex as INT OP INT, not a real literal.
        toks = tokenize("1.eq.2")
        assert [t.kind for t in toks[:3]] == \
            [TokKind.INT, TokKind.OP, TokKind.INT]

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestLinesAndComments:
    def test_newline_tokens_separate_statements(self):
        toks = tokenize("a = 1\nb = 2")
        newlines = [t for t in toks if t.kind is TokKind.NEWLINE]
        assert len(newlines) == 2

    def test_semicolon_separates_statements(self):
        toks = tokenize("a = 1; b = 2")
        newlines = [t for t in toks if t.kind is TokKind.NEWLINE]
        assert len(newlines) >= 2

    def test_bang_comment_stripped(self):
        assert texts("a = 1  ! a comment") == ["a", "=", "1"]

    def test_bang_inside_string_kept(self):
        toks = tokenize("s = 'a!b'")
        assert toks[2].text == "a!b"

    def test_star_comment_line(self):
        assert texts("* full line comment\na = 1") == ["a", "=", "1"]

    def test_c_named_variable_not_comment(self):
        # 'C = n + 1' is an assignment, not a fixed-form comment.
        assert texts("C = n + 1") == ["C", "=", "n", "+", "1"]

    def test_trailing_ampersand_continuation(self):
        assert texts("a = 1 + &\n    2") == ["a", "=", "1", "+", "2"]

    def test_leading_ampersand_continuation(self):
        assert texts("a = 1 + &\n    & 2") == ["a", "=", "1", "+", "2"]

    def test_blank_lines_skipped(self):
        toks = tokenize("\n\na = 1\n\n")
        assert texts("\n\na = 1\n\n") == ["a", "=", "1"]
        assert toks[-1].kind is TokKind.EOF

    def test_line_numbers_reported(self):
        toks = tokenize("a = 1\nbb = 2")
        b_tok = [t for t in toks if t.text == "bb"][0]
        assert b_tok.line == 2

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokKind.EOF
        assert tokenize("x")[-1].kind is TokKind.EOF


class TestNumericEdgeCases:
    def test_integer_then_colon(self):
        # Section syntax 1:32 must not glom into a real.
        toks = tokenize("1:32")
        assert [t.kind for t in toks[:3]] == \
            [TokKind.INT, TokKind.OP, TokKind.INT]

    def test_real_with_trailing_dot(self):
        assert tokenize("2.")[0].kind is TokKind.REAL

    def test_leading_dot_fraction(self):
        assert tokenize(".5")[0].kind is TokKind.REAL

    def test_exponent_requires_digits(self):
        # '2e' is INT followed by IDENT, not an exponent.
        toks = tokenize("2e")
        assert toks[0].kind is TokKind.INT
        assert toks[1].kind is TokKind.IDENT
