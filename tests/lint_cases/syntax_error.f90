program syntax_error
  real :: a(10)
  a = = 1.0
end program syntax_error
! expect: F002 @3
