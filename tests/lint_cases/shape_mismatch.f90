program shape_mismatch
  real :: a(10), b(20)
  b = 1.0
  a = b
end program shape_mismatch
! expect: S104 @4
