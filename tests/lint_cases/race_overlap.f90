! The classic shifted recurrence: the right-hand side must see the
! pre-assignment values, so a serialized in-place loop diverges.
program race_overlap
  integer, parameter :: n = 8
  real :: a(n)
  a = 1.0
  a(2:n) = a(1:n-1)  ! expect: R601 @7
  ! expect: W202 @7
  print *, a
end program race_overlap
