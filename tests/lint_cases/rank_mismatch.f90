program rank_mismatch
  real :: a(4, 4)
  integer :: i
  do i = 1, 4
    a(i) = 0.0
  end do
end program rank_mismatch
! expect: S105 @5
