! A masked store whose source reads the stored array through a
! communication intrinsic: vector semantics need the pre-store values.
program race_masked
  integer, parameter :: n = 8
  real :: a(n), m(n)
  a = 1.0
  m = 1.0
  where (m > 0.0) a = cshift(a, 1)  ! expect: R602 @8
  print *, a
end program race_masked
