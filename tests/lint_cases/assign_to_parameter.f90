program assign_to_parameter
  integer, parameter :: n = 4
  n = 5
end program assign_to_parameter
! expect: S107 @3
