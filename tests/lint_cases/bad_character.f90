program bad_character
  real :: a
  a = 1.0 @ 2
end program bad_character
! expect: F001 @3
