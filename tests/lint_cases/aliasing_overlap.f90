program aliasing_overlap
  real :: a(10)
  a = 0.0
  a(2:10) = a(1:9) + 1.0
end program aliasing_overlap
! expect: W202 @4
