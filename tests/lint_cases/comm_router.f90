! A diagonal gather: every element pays the general-router tariff.
program comm_router
  integer, parameter :: n = 8
  real :: a(n), c(n, n)
  integer :: i
  c = 1.0
  a = 0.0
  forall (i = 1:n) a(i) = c(i, i)  ! expect: C702 @8
  print *, a
end program comm_router
