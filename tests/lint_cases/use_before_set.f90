program use_before_set
  real :: s, t
  t = s + 1.0
  print *, t
end program use_before_set
! expect: W201 @3
