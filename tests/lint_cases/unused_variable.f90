program unused_variable
  real :: a(10)
  real :: dead(5)
  a = 1.0
  print *, a(1)
end program unused_variable
! expect: W203 @3
