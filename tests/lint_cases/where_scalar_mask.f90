program where_scalar_mask
  real :: a(8)
  logical :: m
  a = 1.0
  m = .true.
  where (m)
    a = 2.0
  end where
end program where_scalar_mask
! expect: S106 @6
