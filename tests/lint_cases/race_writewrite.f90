! Two masked stores to the same array in one fusable group whose masks
! overlap: the fused MOVE is order-sensitive (write-write race).
program race_writewrite
  integer, parameter :: n = 8
  real :: a(n), b(n)
  a = 0.0
  b = 1.0
  where (b > 0.5) a = b
  where (b > 0.25) a = 2.0 * b  ! expect: R603 @9
  print *, a
end program race_writewrite
