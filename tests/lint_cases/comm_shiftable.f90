! A serialized element loop that is really a uniform-offset neighbor
! access: a CSHIFT would serve it on the grid network.
program comm_shiftable
  integer, parameter :: n = 8
  real :: a(n), b(n)
  integer :: i
  b = 1.0
  a = 0.0
  forall (i = 1:n-1) a(i) = b(i+1)  ! expect: C701 @9
  print *, a
end program comm_shiftable
