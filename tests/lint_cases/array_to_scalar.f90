program array_to_scalar
  real :: a(8), s
  a = 1.0
  s = a
end program array_to_scalar
! expect: S104 @4
