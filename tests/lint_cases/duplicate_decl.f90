program duplicate_decl
  real :: a(4)
  real :: a(4)
  a = 1.0
end program duplicate_decl
! expect: S101 @3
