program type_mix
  logical :: l
  real :: x
  x = 1.0
  l = x + 1.0
end program type_mix
! expect: S106 @5
