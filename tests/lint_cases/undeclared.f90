program undeclared
  real :: a(10)
  a = x + 1.0
end program undeclared
! expect: S102 @3
