program unknown_function
  real :: a(10)
  a = 1.0
  a = frobnicate(a)
end program unknown_function
! expect: S103 @4
