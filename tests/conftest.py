"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.lowering import check_program, lower_program
from repro.machine import Machine, fieldwise_model, slicewise_model
from repro.transform import optimize


@pytest.fixture
def small_machine() -> Machine:
    """A CM/2 with 64 PEs: identical semantics, smaller geometries."""
    return Machine(slicewise_model(n_pes=64))


def lower(source: str):
    """Parse + lower + check; returns the LoweredProgram."""
    lowered = lower_program(parse_program(source))
    check_program(lowered.nir, lowered.env)
    return lowered


def transform(source: str, options=None):
    """Parse + lower + optimize; returns the TransformedProgram."""
    return optimize(lower(source), options)


def compile_and_run(source: str, options: CompilerOptions | None = None,
                    machine: Machine | None = None):
    """Full pipeline compile + run on a fresh small machine."""
    exe = compile_source(source, options)
    return exe.run(machine or Machine(slicewise_model(n_pes=64)))


def assert_matches_reference(source: str,
                             options: CompilerOptions | None = None,
                             rtol: float = 1e-9,
                             check_scalars: tuple[str, ...] = ()):
    """Compile+run and compare every array with the reference oracle."""
    result = compile_and_run(source, options)
    ref = run_reference(parse_program(source))
    for name, expected in ref.arrays.items():
        got = result.arrays[name]
        np.testing.assert_allclose(
            got, expected, rtol=rtol, atol=1e-12,
            err_msg=f"array '{name}' diverges from the reference")
    for name in check_scalars:
        assert np.isclose(float(result.scalars[name]),
                          float(ref.scalars[name]), rtol=rtol), name
    return result, ref
