"""Incremental compilation: the artifact store and its reuse contract.

* store round-trips: put/get/head, meta side channel, content chaining;
* crash safety: truncated/corrupt/version-skewed entries degrade to a
  recompute (never an exception), writes are atomic, concurrent
  writers never expose a partial artifact;
* reuse: a warm recompile hits every artifact; a tail edit reuses the
  prefix; a target or fuse_exec switch never serves a stale artifact;
* the hypothesis differential: incremental and cold compiles of the
  same edited source agree structurally and bit-identically at run
  time;
* the admin surface: ``cache_admin``, the ``{"op": "cache"}`` service
  op, and the ``repro cache`` CLI.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.driver.compiler import CompilerOptions, compile_source
from repro.machine import Machine, slicewise_model
from repro.service.cache import CompileCache, cache_admin, cache_key
from repro.service.jobs import execute_request
from repro.service.store import ArtifactStore, fingerprint, state_hash

SOURCE = """
program heat
integer, parameter :: n = 16
double precision, array(n,n) :: t, tnew
double precision kappa
integer it
kappa = 0.1d0
forall (i=1:n, j=1:n) t(i,j) = mod(i*7 + j*3, 11) * 1.0d0
do it = 1, 4
   tnew = t + kappa * (cshift(t, shift=1, dim=1) &
          + cshift(t, shift=-1, dim=1) - 2.0d0 * t)
   t = tnew
end do
end program heat
"""


def make_store(tmp_path, **kw) -> ArtifactStore:
    return ArtifactStore(str(tmp_path / "store"), **kw)


def compile_inc(source, store, options=None, phase_pool=None):
    return compile_source(source, options, cache=False, incremental=True,
                          store=store, phase_pool=phase_pool)


def run_outputs(exe):
    result = exe.run(Machine(slicewise_model(n_pes=64)))
    return result.arrays, result.scalars, result.output


def assert_same_run(exe_a, exe_b):
    """Structural equality of the compiled artifact + bitwise run."""
    assert exe_a.host_program == exe_b.host_program
    arrays_a, scalars_a, out_a = run_outputs(exe_a)
    arrays_b, scalars_b, out_b = run_outputs(exe_b)
    assert sorted(arrays_a) == sorted(arrays_b)
    for name, data in arrays_a.items():
        np.testing.assert_array_equal(data, arrays_b[name])
    assert scalars_a == scalars_b
    assert out_a == out_b


# ---------------------------------------------------------------------------
# Store basics
# ---------------------------------------------------------------------------


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = make_store(tmp_path)
        key = store.fingerprint("pass", {"in": "abc", "pass": "fold"})
        assert store.put("pass", key, {"x": [1, 2, 3]},
                         meta=("slot", 7), out_hash="deadbeef")
        art = store.get("pass", key)
        assert art is not None
        assert art.obj == {"x": [1, 2, 3]}
        assert art.meta == ("slot", 7)
        assert art.out_hash == "deadbeef"

    def test_head_reads_hash_and_meta_only(self, tmp_path):
        store = make_store(tmp_path)
        store.put("pass", "k1", [0] * 1000, meta={"m": 1}, out_hash="h1")
        assert store.head("pass", "k1") == ("h1", {"m": 1})
        assert store.head("pass", "nope") is None
        assert store.counters["pass"]["hits"] == 1
        assert store.counters["pass"]["misses"] == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        assert store.get("front", "nothing") is None
        assert store.counters["front"]["misses"] == 1
        assert store.counters["front"]["errors"] == 0

    def test_fingerprint_pure_and_kind_separated(self, tmp_path):
        payload = {"source": "x = 1", "target": "cm2"}
        assert fingerprint("front", payload) == fingerprint("front",
                                                            dict(payload))
        assert fingerprint("front", payload) != fingerprint("exe", payload)
        assert fingerprint("front", payload) != \
            fingerprint("front", {**payload, "target": "cm5"})

    def test_state_hash_is_content_addressed(self):
        assert state_hash([1, 2], "a") == state_hash([1, 2], "a")
        assert state_hash([1, 2], "a") != state_hash([1, 2], "b")

    def test_ls_purge_stats(self, tmp_path):
        store = make_store(tmp_path)
        store.put("front", "f1", 1)
        store.put("pass", "p1", 2)
        store.put("pass", "p2", 3)
        entries = store.ls()
        assert len(entries) == 3
        assert {e["kind"] for e in entries} == {"front", "pass"}
        assert all(e["bytes"] > 0 for e in entries)
        assert len(store.ls(kind="pass")) == 2
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["kinds"]["pass"]["entries"] == 2
        assert stats["kinds"]["front"]["entries"] == 1
        assert store.purge(kind="pass") == 2
        assert store.get("front", "f1") is not None
        assert store.purge() == 1
        assert store.stats()["entries"] == 0

    def test_lru_eviction_keeps_newest(self, tmp_path):
        store = make_store(tmp_path, max_bytes=1)
        store.put("pass", "old", list(range(100)))
        store.put("pass", "new", list(range(100)))
        # The entry just written is protected; the older one is gone.
        assert store.get("pass", "new") is not None
        assert store.get("pass", "old") is None
        assert store.evictions >= 1

    def test_version_marker_purges_on_schema_change(self, tmp_path,
                                                    monkeypatch):
        from repro.service import cache as cache_mod

        store = make_store(tmp_path)
        store.put("exe", "k", "payload")
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", 999)
        reopened = ArtifactStore(store.root)
        assert reopened.stats()["entries"] == 0


# ---------------------------------------------------------------------------
# Crash safety
# ---------------------------------------------------------------------------


class TestCrashSafety:
    def _entry_path(self, store):
        (name,) = os.listdir(store.objects)
        return os.path.join(store.objects, name)

    def test_truncated_header_degrades_to_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put("pass", "k", [1, 2, 3], out_hash="h")
        path = self._entry_path(store)
        with open(path, "wb") as f:
            f.write(b"5:")  # a write that died mid-header
        assert store.get("pass", "k") is None
        assert store.counters["pass"]["errors"] == 1
        assert not os.path.exists(path), "corrupt entry must be forgotten"

    def test_truncated_state_degrades_to_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put("pass", "k", list(range(1000)), out_hash="h")
        path = self._entry_path(store)
        blob = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(blob[:len(blob) // 2])  # valid header, half a pickle
        assert store.get("pass", "k") is None
        assert store.counters["pass"]["errors"] == 1
        assert not os.path.exists(path)

    def test_garbage_body_degrades_to_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put("backend", "k", (1, 2))
        path = self._entry_path(store)
        header = open(path, "rb").read().split(b"\n", 3)
        with open(path, "wb") as f:
            f.write(b"\n".join(header[:3]) + b"\n" + b"\x80garbage")
        assert store.get("backend", "k") is None
        assert store.counters["backend"]["errors"] == 1

    def test_version_skewed_entry_is_forgotten(self, tmp_path):
        store = make_store(tmp_path)
        store.put("front", "k", "obj")
        path = self._entry_path(store)
        blob = open(path, "rb").read()
        _tag, rest = blob.split(b"\n", 1)
        with open(path, "wb") as f:
            f.write(b"0:stale\n" + rest)
        assert store.get("front", "k") is None
        assert store.counters["front"]["errors"] == 1
        assert not os.path.exists(path)

    def test_unpicklable_put_is_an_error_not_an_exception(self, tmp_path):
        store = make_store(tmp_path)
        assert store.put("exe", "k", lambda: None) is False
        assert store.counters["exe"]["errors"] == 1
        assert store.stats()["entries"] == 0

    def test_writes_leave_no_temp_files(self, tmp_path):
        store = make_store(tmp_path)
        for i in range(10):
            store.put("pass", f"k{i}", list(range(50)))
        leftovers = [n for n in os.listdir(store.objects)
                     if not n.endswith(".pkl")]
        assert leftovers == []

    def test_corrupted_pass_artifact_recompiles_correctly(self, tmp_path):
        """A warm chain with one corrupted link degrades to recompute."""
        store = make_store(tmp_path)
        cold = compile_source(SOURCE, cache=False, incremental=False)
        compile_inc(SOURCE, store)
        for name in os.listdir(store.objects):
            if name.endswith(".pass.pkl"):
                with open(os.path.join(store.objects, name), "wb") as f:
                    f.write(b"not an artifact")
        warm = compile_inc(SOURCE, store)
        assert_same_run(cold, warm)

    def test_concurrent_writers_never_expose_partial(self, tmp_path):
        store = make_store(tmp_path)
        key = "contended"
        payloads = [list(range(i, i + 500)) for i in range(8)]
        errors: list[BaseException] = []
        seen: list[object] = []

        def writer(payload):
            try:
                for _ in range(20):
                    store.put("pass", key, payload, out_hash="h")
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for _ in range(60):
                    art = store.get("pass", key)
                    if art is not None:
                        seen.append(art.obj)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(p,))
                   for p in payloads]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert seen, "readers should observe complete artifacts"
        assert all(obj in payloads for obj in seen)
        final = store.get("pass", key)
        assert final is not None and final.obj in payloads


# ---------------------------------------------------------------------------
# Incremental reuse
# ---------------------------------------------------------------------------


class TestIncrementalReuse:
    def test_warm_recompile_hits_every_stage(self, tmp_path):
        store = make_store(tmp_path)
        first = compile_inc(SOURCE, store)
        arts = first.transformed.trace.artifacts
        assert arts["front"] == "miss"
        assert arts["backend"] == "miss"
        assert arts["passes"]["hits"] == 0
        warm = compile_inc(SOURCE, store)
        arts = warm.transformed.trace.artifacts
        assert arts["front"] == "hit"
        assert arts["backend"] == "hit"
        assert arts["passes"]["misses"] == 0
        assert arts["passes"]["hits"] > 0
        assert_same_run(first, warm)

    def test_warm_trace_marks_cached_passes(self, tmp_path):
        store = make_store(tmp_path)
        compile_inc(SOURCE, store)
        warm = compile_inc(SOURCE, store)
        cached = [t.cached for t in warm.transformed.trace.passes
                  if t.enabled]
        assert cached and all(cached)
        assert any("[cached]" in line
                   for line in warm.transformed.trace.summary_lines())

    def test_incremental_matches_cold(self, tmp_path):
        store = make_store(tmp_path)
        cold = compile_source(SOURCE, cache=False, incremental=False)
        inc_cold = compile_inc(SOURCE, store)
        inc_warm = compile_inc(SOURCE, store)
        assert_same_run(cold, inc_cold)
        assert_same_run(cold, inc_warm)

    def test_source_edit_reuses_nothing_stale(self, tmp_path):
        store = make_store(tmp_path)
        compile_inc(SOURCE, store)
        edited = SOURCE.replace("kappa = 0.1d0", "kappa = 0.2d0")
        exe = compile_inc(edited, store)
        assert exe.transformed.trace.artifacts["front"] == "miss"
        cold = compile_source(edited, cache=False, incremental=False)
        assert_same_run(cold, exe)

    def test_comment_only_edit_reuses_full_prefix(self, tmp_path):
        """A comment edit re-parses, then chains warm: the front
        artifact misses but records the same lowered-state hash, so
        every pass and the backend reuse their artifacts."""
        store = make_store(tmp_path)
        compile_inc(SOURCE, store)
        edited = SOURCE.replace("kappa = 0.1d0",
                                "kappa = 0.1d0  ! diffusivity")
        assert edited != SOURCE
        exe = compile_inc(edited, store)
        arts = exe.transformed.trace.artifacts
        assert arts["front"] == "miss"
        assert arts["passes"]["misses"] == 0
        assert arts["passes"]["hits"] > 0
        assert arts["backend"] == "hit"

    def test_backend_config_edit_reuses_prefix(self, tmp_path):
        """A tail (backend-only) change hits front + passes."""
        store = make_store(tmp_path)
        compile_inc(SOURCE, store)
        naive_backend = dataclasses.replace(
            CompilerOptions(), backend=CompilerOptions.naive().backend)
        exe = compile_inc(SOURCE, store, options=naive_backend)
        arts = exe.transformed.trace.artifacts
        assert arts["front"] == "hit"
        assert arts["passes"]["misses"] == 0
        assert arts["passes"]["hits"] > 0
        assert arts["backend"] == "miss"
        cold = compile_source(SOURCE, options=naive_backend, cache=False,
                              incremental=False)
        assert_same_run(cold, exe)

    def test_backend_miss_reuses_phase_artifacts(self, tmp_path):
        store = make_store(tmp_path)
        first = compile_inc(SOURCE, store)
        assert first.transformed.trace.artifacts["phases"]["misses"] > 0
        store.purge(kind="backend")
        exe = compile_inc(SOURCE, store)
        arts = exe.transformed.trace.artifacts
        assert arts["backend"] == "miss"
        assert arts["phases"]["misses"] == 0
        assert arts["phases"]["hits"] > 0
        assert_same_run(first, exe)

    def test_target_switch_never_serves_stale_artifacts(self, tmp_path):
        store = make_store(tmp_path)
        cm2 = compile_inc(SOURCE, store)
        host_options = CompilerOptions(target="host")
        host = compile_inc(SOURCE, store, options=host_options)
        # The context (resolved target) splits every key: nothing from
        # the cm2 compile may be reused, starting at the front end.
        assert host.transformed.trace.artifacts["front"] == "miss"
        assert host.transformed.trace.artifacts["backend"] == "miss"
        cold = compile_source(SOURCE, options=host_options, cache=False,
                              incremental=False)
        assert host.host_program == cold.host_program
        assert cm2.host_program != host.host_program \
            or cm2.partition != host.partition

    def test_cache_key_splits_target_and_fuse_exec(self):
        """Regression: the whole-source key was blind to both."""
        from repro.transform import Options as TransformOptions

        base = CompilerOptions()
        host = CompilerOptions(target="host")
        unfused = CompilerOptions(
            transform=TransformOptions(fuse_exec=False))
        keys = {cache_key(SOURCE, base), cache_key(SOURCE, host),
                cache_key(SOURCE, unfused)}
        assert len(keys) == 3

    def test_verify_forces_cold_compile(self, tmp_path):
        store = make_store(tmp_path)
        compile_inc(SOURCE, store)
        exe = compile_inc(SOURCE, store,
                          options=CompilerOptions(verify=True))
        # No artifact accounting: the verified compile ran everything.
        assert exe.transformed.trace.artifacts == {}

    def test_phase_pool_warms_phase_artifacts(self, tmp_path):
        from repro.service.pool import WorkerPool

        store = make_store(tmp_path)
        first = compile_inc(SOURCE, store)
        store.purge(kind="backend")
        store.purge(kind="phase")
        pool = WorkerPool(1, cache=store.root)  # in-process fallback
        try:
            exe = compile_inc(SOURCE, store, phase_pool=pool)
        finally:
            pool.close()
        arts = exe.transformed.trace.artifacts
        assert arts["backend"] == "miss"
        assert arts["phases"]["hits"] > 0
        assert arts["phases"]["misses"] == 0
        assert_same_run(first, exe)


# ---------------------------------------------------------------------------
# The hypothesis differential: incremental == cold
# ---------------------------------------------------------------------------


@st.composite
def edits(draw):
    """A (base, edited) source pair differing in one statement."""
    n = draw(st.integers(min_value=4, max_value=10))
    k_base = draw(st.integers(min_value=1, max_value=9))
    k_edit = draw(st.integers(min_value=1, max_value=9))
    op = draw(st.sampled_from(["+", "-", "*"]))

    def program(k):
        return (f"integer a({n}), b({n})\n"
                f"forall (i=1:{n}) a(i) = i\n"
                f"b = a {op} {k}\n"
                f"b = b + cshift(a, 1)\n"
                "print *, sum(b)\n"
                "end\n")

    return program(k_base), program(k_edit)


@settings(max_examples=8, deadline=None)
@given(edits())
def test_incremental_equals_cold_after_edit(pair):
    """Warm the store on a base program, compile an edit through it,
    and require structural + bitwise agreement with a cold compile."""
    base, edited = pair
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(os.path.join(root, "store"))
        compile_inc(base, store)  # warm: the edit shares its prefix
        inc = compile_inc(edited, store)
        cold = compile_source(edited, cache=False, incremental=False)
        assert_same_run(cold, inc)
        # And a second, fully warm compile of the edit agrees too.
        warm = compile_inc(edited, store)
        assert_same_run(cold, warm)


# ---------------------------------------------------------------------------
# The admin surface: cache_admin, the service op, the CLI
# ---------------------------------------------------------------------------


class TestAdminSurface:
    def test_cache_admin_stats_ls_purge(self, tmp_path):
        cache = CompileCache(root=str(tmp_path / "cc"))
        cache.compile(SOURCE)
        stats = cache_admin(cache)
        assert stats["cache"]["entries"] == 1
        assert stats["store"]["kinds"]["exe"]["entries"] == 1
        listing = cache_admin(cache, "ls", kind="exe")
        assert len(listing["entries"]) == 1
        assert cache_admin(cache, "purge")["purged"] == 1
        assert cache.stats()["entries"] == 0
        _exe, hit = cache.compile(SOURCE)
        assert not hit, "purge must also invalidate the memo tier"
        with pytest.raises(ValueError):
            cache_admin(cache, "defragment")

    def test_service_cache_op(self, tmp_path):
        cache = CompileCache(root=str(tmp_path / "cc"))
        resp = execute_request({"op": "compile", "source": SOURCE,
                                "incremental": True}, cache)
        assert resp["ok"], resp
        assert resp["pipeline"]["artifacts"]["front"] == "miss"
        resp = execute_request({"op": "cache"}, cache)
        assert resp["ok"]
        assert resp["store"]["entries"] > 0
        resp = execute_request({"op": "cache", "action": "purge"}, cache)
        assert resp["ok"] and resp["purged"] > 0
        resp = execute_request({"op": "cache", "action": "nope"}, cache)
        assert not resp["ok"]
        assert resp["error"]["type"] == "ValueError"

    def test_service_incremental_response_and_fingerprint(self, tmp_path):
        from repro.service.jobs import request_fingerprint

        plain = request_fingerprint({"op": "compile", "source": SOURCE})
        inc = request_fingerprint({"op": "compile", "source": SOURCE,
                                   "incremental": True})
        assert plain != inc and inc.endswith(":inc")

    def test_cli_cache_command(self, tmp_path, capsys):
        from repro.driver.cli import main

        root = str(tmp_path / "cc")
        cache = CompileCache(root=root)
        cache.compile(SOURCE)
        assert main(["cache", "stats", "--cache-dir", root,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"]["kinds"]["exe"]["entries"] == 1
        assert main(["cache", "ls", "--cache-dir", root]) == 0
        assert "exe" in capsys.readouterr().out
        assert main(["cache", "purge", "--cache-dir", root]) == 0
        assert "purged 1" in capsys.readouterr().out

    def test_cli_incremental_flag(self, tmp_path, capsys, monkeypatch):
        from repro.driver.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
        src = tmp_path / "p.f90"
        src.write_text(SOURCE)
        assert main(["run", str(src), "--incremental"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "front" in out and "pass" in out
