"""Subroutine support: parsing, inline expansion, parameter passing.

Realizes the NIR parameter operators (REF_IN/COPY_IN, Figure 5) by
inline expansion before lowering; see repro/frontend/inline.py.
"""

import numpy as np
import pytest

from repro.frontend import ast_nodes as A
from repro.frontend.inline import InlineError, inline_program
from repro.frontend.parser import parse_program, parse_source

from .conftest import assert_matches_reference


class TestParsing:
    def test_parse_source_units(self):
        sf = parse_source(
            "program p\nx = 1\nend\n"
            "subroutine s(a, b)\ninteger a, b\na = b\nend subroutine s")
        assert len(sf.units) == 2
        assert sf.main.name == "p"
        assert "s" in sf.subroutines
        assert sf.subroutines["s"].params == ("a", "b")

    def test_subroutine_without_args(self):
        sf = parse_source("program p\nend\nsubroutine nop()\nend")
        assert sf.subroutines["nop"].params == ()

    def test_end_subroutine_forms(self):
        sf = parse_source(
            "program p\nend program p\n"
            "subroutine a(x)\ninteger x\nx = 1\nend subroutine a\n"
            "subroutine b(x)\ninteger x\nx = 2\nend\n")
        assert set(sf.subroutines) == {"a", "b"}

    def test_return_statement_parses(self):
        sf = parse_source(
            "program p\nend\nsubroutine s()\nreturn\nend")
        body = sf.subroutines["s"].body
        assert isinstance(body[0], A.ReturnStmt)

    def test_source_without_subroutines_unchanged(self):
        unit = parse_program("integer x\nx = 1\nend")
        assert unit.kind == "program"
        assert len(unit.body) == 1


class TestInlining:
    def test_by_reference_variable(self):
        unit = parse_program(
            "program p\ninteger k\nk = 1\ncall bump(k)\nend\n"
            "subroutine bump(x)\ninteger x\nx = x + 1\nend")
        # The call became the renamed assignment to k itself.
        assigns = [s for s in unit.body if isinstance(s, A.Assignment)]
        assert any(isinstance(s.target, A.VarRef) and s.target.name == "k"
                   and "+" in str(s.expr) for s in assigns)

    def test_by_value_expression(self):
        unit = parse_program(
            "program p\ninteger k\nk = 0\ncall use(k + 5)\nend\n"
            "subroutine use(x)\ninteger x\nx = x * 2\nend")
        # A temporary receives k+5; k itself is never written by the call.
        names = {s.target.name for s in unit.body
                 if isinstance(s, A.Assignment)
                 and isinstance(s.target, A.VarRef)}
        assert any(n.startswith("x_use") for n in names)

    def test_locals_renamed_apart(self):
        unit = parse_program(
            "program p\ninteger w\nw = 9\ncall f()\ncall f()\nend\n"
            "subroutine f()\ninteger w\nw = 1\nend")
        local_names = {s.target.name for s in unit.body
                       if isinstance(s, A.Assignment)
                       and isinstance(s.target, A.VarRef)}
        # Two expansions, two distinct locals, plus the caller's w.
        assert "w" in local_names
        assert len({n for n in local_names if n.startswith("w_f")}) == 2

    def test_nested_calls_inline(self):
        unit = parse_program(
            "program p\ninteger k\nk = 1\ncall outer(k)\nend\n"
            "subroutine outer(x)\ninteger x\ncall inner(x)\nend\n"
            "subroutine inner(y)\ninteger y\ny = y + 10\nend")
        assert not any(isinstance(s, A.CallStmt) for s in unit.body)

    def test_recursion_rejected(self):
        with pytest.raises(InlineError, match="depth"):
            parse_program(
                "program p\ncall f()\nend\n"
                "subroutine f()\ncall f()\nend")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(InlineError, match="expects"):
            parse_program(
                "program p\ninteger k\ncall f(k, k)\nend\n"
                "subroutine f(x)\ninteger x\nx = 1\nend")

    def test_mid_body_return_rejected(self):
        with pytest.raises(InlineError, match="trailing"):
            parse_program(
                "program p\ncall f()\nend\n"
                "subroutine f()\ninteger x\nreturn\nx = 1\nend")

    def test_calls_inside_loops_expand(self):
        unit = parse_program(
            "program p\ninteger a(4)\ninteger i\n"
            "do i = 1, 4\ncall setone(a, i)\nend do\nend\n"
            "subroutine setone(v, k)\ninteger v(4)\ninteger k\n"
            "v(k) = k\nend")
        loop = [s for s in unit.body if isinstance(s, A.DoLoop)][0]
        assert not any(isinstance(s, A.CallStmt) for s in loop.body)


class TestEndToEnd:
    def test_by_reference_semantics(self):
        assert_matches_reference(
            "program p\ninteger k\nk = 1\ncall bump(k)\ncall bump(k)\n"
            "end\n"
            "subroutine bump(x)\ninteger x\nx = x + 1\nend",
            check_scalars=("k",))

    def test_array_by_reference(self):
        assert_matches_reference(
            "program p\ndouble precision a(8), b(8)\n"
            "forall (i=1:8) a(i) = i * 1.0d0\n"
            "call axpy(a, b, 2.0d0)\nend\n"
            "subroutine axpy(x, y, alpha)\n"
            "double precision x(8), y(8)\ndouble precision alpha\n"
            "y = alpha * x + y\nend")

    def test_expression_actual_by_value(self):
        assert_matches_reference(
            "program p\ninteger k, r\nk = 3\nr = 0\n"
            "call square(k + 1, r)\nend\n"
            "subroutine square(x, out)\ninteger x, out\n"
            "out = x * x\nx = 0\nend",
            check_scalars=("k", "r"))

    def test_parallel_work_in_subroutine(self):
        result, _ = assert_matches_reference(
            "program p\ndouble precision t(32,32)\n"
            "forall (i=1:32, j=1:32) t(i,j) = i + j * 0.5d0\n"
            "call diffuse(t)\ncall diffuse(t)\nend\n"
            "subroutine diffuse(u)\ndouble precision u(32,32)\n"
            "u = u + 0.1d0 * (cshift(u,1,1) + cshift(u,-1,1) "
            "+ cshift(u,1,2) + cshift(u,-1,2) - 4.0d0*u)\nend")
        assert result.stats.node_calls >= 2

    def test_subroutine_with_where(self):
        assert_matches_reference(
            "program p\ninteger a(16)\nforall (i=1:16) a(i) = i - 8\n"
            "call clamp(a)\nend\n"
            "subroutine clamp(v)\ninteger v(16)\n"
            "where (v < 0)\nv = 0\nend where\nend")

    def test_subroutine_local_parameter(self):
        assert_matches_reference(
            "program p\ndouble precision x\nx = 0.0d0\ncall f(x)\nend\n"
            "subroutine f(out)\ndouble precision out\n"
            "double precision, parameter :: c = 2.5d0\n"
            "out = c * 2.0d0\nend",
            check_scalars=("x",))


class TestFunctions:
    def test_parse_function_unit(self):
        sf = parse_source(
            "program p\nend\n"
            "double precision function f(x)\ndouble precision x\n"
            "f = x * 2.0d0\nend function f")
        assert "f" in sf.functions
        assert sf.functions["f"].kind == "function"
        assert sf.functions["f"].params == ("x",)

    def test_function_keyword_only_header(self):
        sf = parse_source(
            "program p\nend\n"
            "function g(x)\ninteger g, x\ng = x + 1\nend")
        assert "g" in sf.functions

    def test_scalar_function_in_expression(self):
        assert_matches_reference(
            "program p\ninteger r\nr = twice(3) + twice(4)\nend\n"
            "integer function twice(x)\ninteger x\ntwice = 2 * x\nend",
            check_scalars=("r",))

    def test_function_over_arrays(self):
        assert_matches_reference(
            "program p\ndouble precision a(8)\ndouble precision s\n"
            "forall (i=1:8) a(i) = i * 0.5d0\n"
            "s = total(a) * 2.0d0\nend\n"
            "double precision function total(v)\n"
            "double precision, array(8) :: v\n"
            "total = sum(v)\nend",
            check_scalars=("s",))

    def test_array_valued_function(self):
        assert_matches_reference(
            "program p\ndouble precision a(8), b(8)\n"
            "forall (i=1:8) a(i) = i * 1.0d0\n"
            "b = smoothed(a) + 1.0d0\nend\n"
            "function smoothed(v)\n"
            "double precision, array(8) :: smoothed, v\n"
            "smoothed = 0.5d0 * (v + cshift(v, 1))\nend")

    def test_function_in_if_condition(self):
        assert_matches_reference(
            "program p\ninteger k\nk = 0\n"
            "if (twice(5) > 9) then\nk = 1\nend if\nend\n"
            "integer function twice(x)\ninteger x\ntwice = 2 * x\nend",
            check_scalars=("k",))

    def test_function_calling_function(self):
        assert_matches_reference(
            "program p\ninteger r\nr = quad(3)\nend\n"
            "integer function quad(x)\ninteger x\nquad = twice(twice(x))\n"
            "end\n"
            "integer function twice(x)\ninteger x\ntwice = 2 * x\nend",
            check_scalars=("r",))

    def test_function_in_do_while_rejected(self):
        with pytest.raises(InlineError, match="DO WHILE"):
            parse_program(
                "program p\ninteger x\nx = 0\n"
                "do while (twice(x) < 10)\nx = x + 1\nend do\nend\n"
                "integer function twice(v)\ninteger v\ntwice = 2*v\nend")

    def test_function_in_elseif_rejected(self):
        with pytest.raises(InlineError, match="ELSE IF"):
            parse_program(
                "program p\ninteger x\nx = 1\n"
                "if (x > 0) then\nx = 2\n"
                "else if (twice(x) > 0) then\nx = 3\nendif\nend\n"
                "integer function twice(v)\ninteger v\ntwice = 2*v\nend")

    def test_function_in_forall_rejected(self):
        with pytest.raises(InlineError, match="FORALL"):
            parse_program(
                "program p\ninteger a(4)\n"
                "forall (i=1:4) a(i) = twice(i)\nend\n"
                "integer function twice(v)\ninteger v\ntwice = 2*v\nend")

    def test_function_without_result_decl_rejected(self):
        with pytest.raises(InlineError, match="result"):
            parse_program(
                "program p\ninteger r\nr = f(1)\nend\n"
                "function f(x)\ninteger x\nx = 1\nend")

    def test_recursive_function_rejected(self):
        with pytest.raises(InlineError, match="depth"):
            parse_program(
                "program p\ninteger r\nr = f(1)\nend\n"
                "integer function f(x)\ninteger x\nf = f(x)\nend")
