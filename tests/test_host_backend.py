"""The host target: NIR lowered straight to native vector kernels.

The third registered backend (ISSUE 7) re-proves the paper's
retargeting claim on the CPU running the tests: the whole shared
pipeline (promote -> normalize -> pad_masks -> dse -> block) feeds a
dispatch engine that compiles blocked phases to per-element C loops
and cache-blocked numpy kernels instead of simulating PEs.  The
contract under test is **bit identity**: every program must produce
byte-for-byte the arrays of the cm2 interpreter oracle, across all
three exec modes, with kernel tuning on or off.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.driver.cli import main as cli_main
from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.service.jobs import execute_request, run_target_compare
from repro.targets import (
    TargetModelMismatchError,
    build_machine,
    get_target,
    resolve_model,
)

from .test_targets import PROGRAMS, SWE_PATH, TINY


def _swe_source(n: int = 16) -> str:
    with open(SWE_PATH) as f:
        return f.read().replace("n = 64", f"n = {n}")


def _host_arrays(source: str, exec_mode: str = "fused"):
    exe = compile_source(source, CompilerOptions(target="host"))
    machine = build_machine("host", exec_mode=exec_mode)
    return exe.run(machine).arrays, machine


def _cm2_oracle(source: str):
    exe = compile_source(source, CompilerOptions(target="cm2"))
    return exe.run(build_machine("cm2", pes=64, exec_mode="interp")).arrays


# -- registry record --------------------------------------------------------


class TestHostRegistration:
    def test_record_resolves_to_backend(self):
        from repro.backend.host.compiler import HostCompiler
        from repro.backend.host.machine import HostMachine

        record = get_target("host")
        assert record.compiler() is HostCompiler
        assert record.compiler().target_name == "host"
        assert record.machine_class() is HostMachine
        assert record.models == ("host",)
        assert record.default_pes == 1

    def test_cm_targets_keep_the_shared_machine(self):
        from repro.machine import Machine

        assert get_target("cm2").machine_class() is Machine
        assert get_target("cm5").machine_class() is Machine

    def test_build_machine_yields_host_machine(self):
        from repro.backend.host.machine import HostMachine

        machine = build_machine("host")
        assert isinstance(machine, HostMachine)
        assert machine.model.name == "host"
        assert machine.model.n_pes == 1
        assert machine.exec_mode == "fused"  # the host default

    def test_host_model_canned_calibration(self, monkeypatch):
        from repro.machine.costs import _host_calibration, host_model

        monkeypatch.setenv("REPRO_HOST_CALIBRATE", "0")
        _host_calibration.cache_clear()
        try:
            model = host_model()
            assert model.clock_hz == 1.0e9
            assert model.instr.arith >= 1
        finally:
            _host_calibration.cache_clear()


# -- bit identity -----------------------------------------------------------


class TestHostBitIdentity:
    @pytest.mark.parametrize("source", PROGRAMS)
    @pytest.mark.parametrize("mode", ["interp", "fast", "fused"])
    def test_small_programs_match_oracle(self, source, mode):
        ref = _cm2_oracle(source)
        arrays, _ = _host_arrays(source, exec_mode=mode)
        assert set(arrays) == set(ref)
        for name in ref:
            assert arrays[name].tobytes() == ref[name].tobytes(), name

    @pytest.mark.parametrize("mode", ["interp", "fast", "fused"])
    def test_swe_matches_oracle(self, mode):
        ref = _cm2_oracle(_swe_source())
        arrays, machine = _host_arrays(_swe_source(), exec_mode=mode)
        for name in ("u", "v", "p"):
            assert arrays[name].tobytes() == ref[name].tobytes(), name
        if mode == "fast":
            # SWE must actually exercise the native tier, not only
            # fall back to recording/steps.
            assert machine.host_metrics["native_dispatches"] > 0

    def test_tuning_off_still_bit_identical(self, monkeypatch):
        ref = _cm2_oracle(_swe_source())
        monkeypatch.setenv("REPRO_HOST_TUNE", "0")
        arrays, _ = _host_arrays(_swe_source())
        for name in ("u", "v", "p"):
            assert arrays[name].tobytes() == ref[name].tobytes(), name

    def test_degraded_tiers_bit_identical(self, monkeypatch):
        # No C compiler path: blocked kernels and the step engine
        # must carry the whole program alone.
        monkeypatch.setenv("REPRO_FUSED_CC", "0")
        ref = _cm2_oracle(_swe_source())
        arrays, machine = _host_arrays(_swe_source(), exec_mode="fast")
        for name in ("u", "v", "p"):
            assert arrays[name].tobytes() == ref[name].tobytes(), name
        assert machine.host_metrics["native_dispatches"] == 0


@st.composite
def _elemental_programs(draw):
    """Random elemental/shift programs over small real arrays."""
    n = draw(st.integers(min_value=4, max_value=12))
    lines = [f"real a({n}), b({n}), c({n})",
             f"forall (i=1:{n}) a(i) = i * 1.5",
             f"forall (i=1:{n}) b(i) = {n} - i",
             f"forall (i=1:{n}) c(i) = mod(i, 3) * 2.0"]
    arrays = ["a", "b", "c"]
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        tgt = draw(st.sampled_from(arrays))
        lhs = draw(st.sampled_from(arrays))
        rhs = draw(st.sampled_from(arrays))
        op = draw(st.sampled_from(["+", "-", "*"]))
        shift = draw(st.integers(min_value=-2, max_value=2))
        expr = f"{lhs} {op} cshift({rhs}, {shift})" if shift \
            else f"{lhs} {op} {rhs}"
        lines.append(f"{tgt} = {expr}")
    lines.append("end")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None)
@given(_elemental_programs())
def test_random_programs_host_matches_reference(source):
    """Differential property: host output == reference interpreter."""
    exe = compile_source(source, CompilerOptions(target="host"))
    result = exe.run(build_machine("host"))
    ref = run_reference(parse_program(source))
    for name, expected in ref.arrays.items():
        np.testing.assert_array_equal(result.arrays[name], expected)


# -- model mismatch (satellite: typed errors on every entry point) ----------


class TestHostModelMismatch:
    def test_api_host_rejects_cm_models(self):
        for model in ("slicewise", "fieldwise", "cm5"):
            with pytest.raises(TargetModelMismatchError):
                resolve_model("host", model)

    def test_api_cm_targets_reject_host_model(self):
        with pytest.raises(TargetModelMismatchError) as exc:
            resolve_model("cm2", "host")
        assert "cm2" in str(exc.value) and "host" in str(exc.value)
        with pytest.raises(TargetModelMismatchError):
            resolve_model("cm5", "host")

    def test_cli_mismatch_fails(self, tmp_path):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        assert cli_main(["run", str(f), "--target", "host",
                         "--model", "slicewise"]) == 1
        assert cli_main(["run", str(f), "--target", "cm2",
                         "--model", "host"]) == 1

    def test_service_mismatch_is_structured_error(self):
        for target, model in (("host", "slicewise"), ("cm2", "host")):
            response = execute_request(
                {"op": "run", "source": TINY, "model": model,
                 "options": {"target": target}})
            assert not response["ok"]
            assert response["error"]["type"] == "TargetModelMismatchError"


# -- driver/CLI plumbing ----------------------------------------------------


class TestHostCli:
    def test_run_stats_json(self, tmp_path):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        stats = tmp_path / "stats.json"
        assert cli_main(["run", str(f), "--target", "host",
                         "--stats-json", str(stats)]) == 0
        payload = json.loads(stats.read_text())
        assert payload["target"] == "host"
        assert payload["model"] == "host"
        assert payload["pipeline"]["passes"]

    def test_run_verify_and_dump_after(self, tmp_path, capsys):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        assert cli_main(["run", str(f), "--target", "host",
                         "--verify"]) == 0
        assert cli_main(["compile", str(f), "--target", "host",
                         "--dump-after", "normalize"]) == 0
        assert "NIR after pass 'normalize'" in capsys.readouterr().out

    def test_compare_targets_flag(self, tmp_path, capsys):
        f = tmp_path / "t.f90"
        f.write_text(PROGRAMS[1])
        assert cli_main(["compare", str(f), "--targets"]) == 0
        out = capsys.readouterr().out
        for name in ("cm2", "cm5", "host"):
            assert name in out

    def test_compare_explicit_subset(self, tmp_path, capsys):
        f = tmp_path / "t.f90"
        f.write_text(TINY)
        assert cli_main(["compare", str(f),
                         "--targets", "cm2", "host"]) == 0
        out = capsys.readouterr().out
        assert "host" in out and "cm5" not in out


# -- service plumbing -------------------------------------------------------


class TestHostService:
    def test_run_op(self):
        response = execute_request(
            {"op": "run", "source": PROGRAMS[1],
             "options": {"target": "host"}})
        assert response["ok"], response
        assert response["target"] == "host"
        assert response["model"] == "host"
        assert "host_native_dispatches" in response["fusion"]

    def test_compare_op_all_targets(self):
        response = execute_request(
            {"op": "compare", "source": PROGRAMS[1], "targets": "all"})
        assert response["ok"], response
        names = [row["target"] for row in response["rows"]]
        assert names == ["cm2", "cm5", "host"]
        assert all(row["max_abs_diff"] == 0.0 for row in response["rows"])

    def test_compare_op_explicit_targets(self):
        response = execute_request(
            {"op": "compare", "source": TINY,
             "targets": ["cm5", "host"]})
        assert response["ok"], response
        assert response["reference"] == "cm5"
        assert [row["target"] for row in response["rows"]] \
            == ["cm5", "host"]

    def test_compare_op_unknown_target_is_structured(self):
        response = execute_request(
            {"op": "compare", "source": TINY, "targets": ["cm9"]})
        assert not response["ok"]
        assert response["error"]["type"] == "UnknownTargetError"

    def test_run_target_compare_api(self):
        payload = run_target_compare(_swe_source(8))
        assert payload["reference"] == "cm2"
        assert len(payload["rows"]) == 3
        for row in payload["rows"]:
            assert row["wall_seconds"] > 0
            assert row["max_abs_diff"] == 0.0


# -- compile-time lowering audit --------------------------------------------


class TestHostLoweringAudit:
    def test_swe_audit(self):
        exe = compile_source(_swe_source(), CompilerOptions(target="host"))
        report = exe.partition
        assert report.lowerings, "host report carries per-phase audits"
        by_name = {low.routine: low for low in report.lowerings}
        # The sin/cos initialization phase cannot lower natively...
        blocked = [low for low in report.lowerings
                   if not low.native_eligible]
        assert any("fsinv" in low.blockers or "fcosv" in low.blockers
                   for low in blocked)
        # ...but the bulk of the timestep phases do.
        assert report.native_fraction > 0.5
        assert all(low.instructions > 0 for low in by_name.values())
