"""End-to-end correctness: full pipeline vs the numpy reference oracle.

Every program compiles through parse → lower → check → transform →
partition → PEAC/host code → machine simulation and must produce exactly
the arrays the reference interpreter computes.
"""

import numpy as np
import pytest

from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, fieldwise_model, slicewise_model
from repro.programs import ALL_KERNELS, swe_source

from .conftest import assert_matches_reference


class TestWholeArrayPrograms:
    def test_figure8_program(self):
        assert_matches_reference(
            "INTEGER K(16,8), L(16)\nL = 6\nK = 2*K + 5\nEND")

    def test_scalar_and_array_mix(self):
        assert_matches_reference(
            "integer a(8)\ninteger x\nx = 3\na = a + x * 2\nend",
            check_scalars=("x",))

    def test_sections_with_strides(self):
        assert_matches_reference(
            "integer a(16)\n"
            "a(1:16) = 1\na(2:16:2) = 5\na(1:15:2) = a(2:16:2) + 1\nend")

    def test_misaligned_section_copy(self):
        assert_matches_reference(
            "integer a(16)\nforall (i=1:16) a(i) = i\n"
            "a(1:8) = a(9:16)\nend")

    def test_forall_full(self):
        assert_matches_reference(
            "integer, array(8,8) :: a\n"
            "forall (i=1:8, j=1:8) a(i,j) = i*10 + j\nend")

    def test_forall_partial_region(self):
        assert_matches_reference(
            "integer a(10)\nforall (i=3:7) a(i) = i*i\nend")

    def test_forall_strided(self):
        assert_matches_reference(
            "integer a(10)\nforall (i=1:9:2) a(i) = i\nend")

    def test_where_elsewhere(self):
        assert_matches_reference(
            "integer a(8), b(8)\nforall (i=1:8) b(i) = i\n"
            "where (b > 4)\na = b\nelsewhere\na = -b\nend where\nend")

    def test_where_self_update(self):
        assert_matches_reference(
            "integer a(8)\nforall (i=1:8) a(i) = i\n"
            "where (a > 3)\na = a - 3\nelsewhere\na = a + 100\n"
            "end where\nend")

    def test_nested_where_mask_expression(self):
        assert_matches_reference(
            "integer a(8), b(8)\nforall (i=1:8) a(i) = i\n"
            "where (mod(a, 2) == 0) b = a * a\nend")

    def test_merge_intrinsic(self):
        assert_matches_reference(
            "integer a(8), b(8), c(8)\n"
            "forall (i=1:8) a(i) = i\nb = 9 - a\n"
            "c = merge(a, b, a > b)\nend")

    def test_type_conversion_on_store(self):
        assert_matches_reference(
            "integer a(4)\ndouble precision d(4)\n"
            "d = 2.7d0\na = d\nend")  # truncation toward zero

    def test_integer_exponent(self):
        assert_matches_reference("integer a(4)\na = 3\na = a**2\nend")

    def test_double_precision_arithmetic(self):
        assert_matches_reference(
            "double precision x(8)\n"
            "forall (i=1:8) x(i) = i * 0.25d0\n"
            "x = sqrt(x) + exp(x) / (x + 1.0d0)\nend", rtol=1e-12)


class TestCommunication:
    def test_cshift_chain(self):
        assert_matches_reference(
            "integer v(12), z(12)\nforall (i=1:12) v(i) = i\n"
            "z = cshift(v, 3) + cshift(v, -2)\nend")

    def test_cshift_2d_both_dims(self):
        assert_matches_reference(
            "integer p(6,4), q(6,4)\nforall (i=1:6, j=1:4) p(i,j)=i*10+j\n"
            "q = cshift(p, 1, 1) + cshift(p, -1, 2)\nend")

    def test_double_cshift(self):
        assert_matches_reference(
            "integer p(6,6), q(6,6)\nforall (i=1:6, j=1:6) p(i,j)=i+j\n"
            "q = cshift(cshift(p, -1, 1), -1, 2)\nend")

    def test_eoshift(self):
        assert_matches_reference(
            "integer v(8), z(8)\nforall (i=1:8) v(i) = i\n"
            "z = eoshift(v, 2)\nend")

    def test_transpose(self):
        assert_matches_reference(
            "integer a(5,5), b(5,5)\nforall (i=1:5, j=1:5) a(i,j)=i*10+j\n"
            "b = transpose(a)\nend")

    def test_spread(self):
        assert_matches_reference(
            "integer v(4), m(3,4)\nforall (i=1:4) v(i) = i\n"
            "m = spread(v, 1, 3)\nend")

    def test_figure12_excerpt(self):
        assert_matches_reference("""
double precision, array(8,8) :: z, v, u, p
double precision fsdx, fsdy
fsdx = 0.04d0
fsdy = 0.025d0
forall (i=1:8, j=1:8) u(i,j) = i*0.1d0 + j*0.2d0
forall (i=1:8, j=1:8) v(i,j) = i*0.3d0 - j*0.1d0
forall (i=1:8, j=1:8) p(i,j) = 10.0d0 + mod(i+j, 7)
z = (fsdx*(v - cshift(v, dim=1, shift=-1)) - fsdy*(u - cshift(u, dim=2, shift=-1))) / (p + cshift(p, dim=1, shift=-1))
end""", rtol=1e-12)


class TestReductionsAndControl:
    def test_sum_to_scalar(self):
        assert_matches_reference(
            "integer a(8)\ninteger s\nforall (i=1:8) a(i) = i\n"
            "s = sum(a)\nend", check_scalars=("s",))

    def test_reduction_in_expression(self):
        assert_matches_reference(
            "double precision a(8)\ndouble precision m\na = 2.0d0\n"
            "m = sum(a) / size(a)\nend", check_scalars=("m",))

    def test_reduction_controls_branch(self):
        assert_matches_reference(
            "integer a(8)\ninteger s\nforall (i=1:8) a(i) = i\n"
            "s = 0\nif (maxval(a) > 5) then\ns = 1\nelse\ns = 2\nendif\n"
            "end", check_scalars=("s",))

    def test_dimensional_reduction(self):
        assert_matches_reference(
            "integer a(4,6), r(6)\nforall (i=1:4, j=1:6) a(i,j) = i*j\n"
            "r = sum(a, 1)\nend")

    def test_serial_time_loop(self):
        assert_matches_reference(
            "integer a(8)\ninteger t\na = 1\n"
            "do t = 1, 5\na = a * 2\nend do\nend")

    def test_do_while_with_reduction(self):
        assert_matches_reference(
            "double precision a(8)\ndouble precision total\na = 1.0d0\n"
            "total = 0.0d0\n"
            "do while (total < 20.0d0)\na = a * 1.5d0\n"
            "total = sum(a)\nend do\nend", check_scalars=("total",))

    def test_serial_recurrence_on_host(self):
        assert_matches_reference(
            "integer a(8)\ninteger i\na(1) = 1\n"
            "do 1 i=2,8\na(i) = a(i-1) * 2\n1 continue\nend")

    def test_print_output_matches(self):
        result, ref = assert_matches_reference(
            "integer a(4)\ninteger s\na = 5\ns = sum(a)\nprint *, s\nend")
        assert result.output == ref.output

    def test_stop_halts_both(self):
        result, ref = assert_matches_reference(
            "integer a(4)\na = 1\nstop\na = 2\nend")
        assert np.all(result.arrays["a"] == 1)


class TestAllKernelsAllModels:
    @pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
    def test_optimized(self, kernel):
        assert_matches_reference(ALL_KERNELS[kernel]())

    @pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
    def test_naive(self, kernel):
        assert_matches_reference(ALL_KERNELS[kernel](),
                                 CompilerOptions.naive())

    @pytest.mark.parametrize("kernel", ["heat", "life", "where"])
    def test_starlisp_model(self, kernel):
        from repro.baselines import compile_starlisp
        src = ALL_KERNELS[kernel]()
        exe = compile_starlisp(src)
        result = exe.run(Machine(fieldwise_model(64)))
        ref = run_reference(parse_program(src))
        for name, expected in ref.arrays.items():
            np.testing.assert_allclose(result.arrays[name], expected,
                                       rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("kernel", ["heat", "life", "where"])
    def test_cmfortran_model(self, kernel):
        from repro.baselines import compile_cmfortran
        src = ALL_KERNELS[kernel]()
        exe = compile_cmfortran(src)
        result = exe.run(Machine(slicewise_model(64)))
        ref = run_reference(parse_program(src))
        for name, expected in ref.arrays.items():
            np.testing.assert_allclose(result.arrays[name], expected,
                                       rtol=1e-9, atol=1e-12)


class TestSwe:
    def test_swe_small_correct(self):
        assert_matches_reference(swe_source(n=16, itmax=3), rtol=1e-9)

    def test_swe_cm5_target_correct(self):
        from repro.machine import cm5_model
        src = swe_source(n=16, itmax=2)
        exe = compile_source(src, CompilerOptions(target="cm5"))
        result = exe.run(Machine(cm5_model(64)))
        ref = run_reference(parse_program(src))
        for name in ("u", "v", "p"):
            np.testing.assert_allclose(result.arrays[name],
                                       ref.arrays[name], rtol=1e-9)

    def test_swe_energy_stays_bounded(self):
        # A sanity check that the discretization is stable over a few
        # steps (the scheme is the standard Sadourny C-grid).
        result, _ = assert_matches_reference(swe_source(n=16, itmax=8))
        assert np.isfinite(result.arrays["p"]).all()
        assert result.arrays["p"].max() < 1.0e6


class TestInputsOverride:
    def test_run_with_preset_arrays(self):
        src = "integer a(4), b(4)\nb = a * 2\nend"
        exe = compile_source(src)
        result = exe.run(Machine(slicewise_model(64)),
                         inputs={"a": np.array([1, 2, 3, 4])})
        np.testing.assert_array_equal(result.arrays["b"], [2, 4, 6, 8])

    def test_reference_with_preset_arrays(self):
        ref = run_reference(
            parse_program("integer a(4), b(4)\nb = a * 2\nend"),
            inputs={"a": np.array([1, 2, 3, 4])})
        np.testing.assert_array_equal(ref.arrays["b"], [2, 4, 6, 8])
