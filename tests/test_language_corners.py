"""Language-surface corners: types, intrinsics, and odd-but-legal forms."""

import numpy as np
import pytest

from repro.driver.compiler import CompilerOptions, compile_source
from repro.machine import Machine, slicewise_model

from .conftest import assert_matches_reference


class TestSinglePrecision:
    def test_real_arrays_stay_float32(self):
        result, _ = assert_matches_reference(
            "real x(8)\nforall (i=1:8) x(i) = i * 0.5\n"
            "x = x * 2.0 + 1.0\nend", rtol=1e-6)
        assert result.arrays["x"].dtype == np.float32

    def test_mixed_precision_promotes(self):
        assert_matches_reference(
            "real x(8)\ndouble precision y(8)\n"
            "forall (i=1:8) x(i) = i * 0.25\n"
            "y = x + 1.0d0\nend", rtol=1e-6)

    def test_real_function_notation(self):
        assert_matches_reference(
            "integer k(4)\nreal x(4)\nk = 7\nx = real(k) / 2.0\nend",
            rtol=1e-6)


class TestReductionFamily:
    def test_product(self):
        assert_matches_reference(
            "integer a(5)\ninteger p\nforall (i=1:5) a(i) = i\n"
            "p = product(a)\nend", check_scalars=("p",))

    def test_any_all_into_branches(self):
        assert_matches_reference(
            "integer a(6)\ninteger r\nforall (i=1:6) a(i) = i - 3\n"
            "r = 0\n"
            "if (any(a > 2)) then\nr = r + 1\nend if\n"
            "if (all(a > -9)) then\nr = r + 10\nend if\nend",
            check_scalars=("r",))

    def test_count_with_compound_mask(self):
        assert_matches_reference(
            "integer a(10)\ninteger c\nforall (i=1:10) a(i) = i\n"
            "c = count((a > 2) .and. (mod(a, 2) == 0))\nend",
            check_scalars=("c",))

    def test_maxval_minval_dim(self):
        assert_matches_reference(
            "integer m(4,6), r(6), q(4)\n"
            "forall (i=1:4, j=1:6) m(i,j) = i*10 - j*j\n"
            "r = maxval(m, 1)\nq = minval(m, 2)\nend")

    def test_reduction_of_masked_product(self):
        assert_matches_reference(
            "double precision a(8)\ndouble precision s\n"
            "forall (i=1:8) a(i) = i * 0.5d0\n"
            "s = sum(merge(a, 0.0d0, a > 2.0d0))\nend",
            check_scalars=("s",))


class TestShiftFamily:
    def test_eoshift_scalar_boundary(self):
        assert_matches_reference(
            "integer v(8), z(8)\nforall (i=1:8) v(i) = i\n"
            "z = eoshift(v, 3, 99)\nend")

    def test_eoshift_negative(self):
        assert_matches_reference(
            "integer v(8), z(8)\nforall (i=1:8) v(i) = i\n"
            "z = eoshift(v, -2, -1, 1)\nend")

    def test_cshift_full_period_identity(self):
        result, ref = assert_matches_reference(
            "integer v(8), z(8)\nforall (i=1:8) v(i) = i*i\n"
            "z = cshift(v, 8)\nend")
        np.testing.assert_array_equal(result.arrays["z"],
                                      result.arrays["v"])

    def test_cshift_of_expression(self):
        assert_matches_reference(
            "integer v(8), z(8)\nforall (i=1:8) v(i) = i\n"
            "z = cshift(v * v + 1, 2)\nend")

    def test_transpose_round_trip(self):
        result, _ = assert_matches_reference(
            "integer a(5,7), b(7,5), c(5,7)\n"
            "forall (i=1:5, j=1:7) a(i,j) = i*100 + j\n"
            "b = transpose(a)\nc = transpose(b)\nend")
        np.testing.assert_array_equal(result.arrays["c"],
                                      result.arrays["a"])


class TestOddButLegal:
    def test_empty_program(self):
        exe = compile_source("end")
        result = exe.run(Machine(slicewise_model(64)))
        assert result.stats.node_calls == 0

    def test_declaration_only_program(self):
        exe = compile_source("integer a(4)\nend")
        result = exe.run(Machine(slicewise_model(64)))
        np.testing.assert_array_equal(result.arrays["a"], [0, 0, 0, 0])

    def test_self_assignment(self):
        assert_matches_reference("integer a(6)\na = a\nend")

    def test_chained_sections_same_statement(self):
        assert_matches_reference(
            "integer a(12)\nforall (i=1:12) a(i) = i\n"
            "a(1:6) = a(1:6) + a(1:6)\nend")

    def test_deeply_nested_parentheses(self):
        assert_matches_reference(
            "integer x\nx = ((((1 + 2)) * ((3))))\nend",
            check_scalars=("x",))

    def test_negative_do_step(self):
        assert_matches_reference(
            "integer a(6)\ninteger i\n"
            "do i = 6, 1, -1\na(i) = 7 - i\nend do\nend")

    def test_zero_trip_loop(self):
        assert_matches_reference(
            "integer a(4)\ninteger i\na = 9\n"
            "do i = 4, 1\na = 0\nend do\nend")

    def test_where_statement_form_compiles_parallel(self):
        result, _ = assert_matches_reference(
            "integer a(64)\nforall (i=1:64) a(i) = i\n"
            "where (a > 32) a = 0\nend")
        assert result.stats.node_calls >= 1

    def test_logical_array_assignment(self):
        assert_matches_reference(
            "logical m(8)\ninteger a(8)\nforall (i=1:8) a(i) = i\n"
            "m = a > 4\n"
            "where (m) a = 0\nend")

    def test_power_with_integer_and_real(self):
        assert_matches_reference(
            "double precision x(6)\nforall (i=1:6) x(i) = i * 0.5d0\n"
            "x = x**2 + x**0.5d0\nend", rtol=1e-12)

    def test_print_array(self):
        result, ref = assert_matches_reference(
            "integer a(3)\na = 5\nprint *, a\nend")
        assert result.output  # some rendering of the array

    def test_very_long_fused_block_splits_cleanly(self):
        # 30 statements over the same shape fuse, then split on pointer
        # pressure; results must survive the round trip.
        lines = ["double precision q(64)", "q = 1.0d0"]
        for k in range(30):
            lines.append(f"q = q * 1.0d0 + {k}.0d0")
        lines.append("end")
        assert_matches_reference("\n".join(lines))
