"""The pass manager: registry, ordering, trace, dumps, equivalence.

The refactor contract is that driving the transform pipeline through
the declarative pass registry produces *bit-identical* executables to
the hand-wired sequence it replaced — the hypothesis test at the bottom
replays the legacy wiring inline and compares both the optimized NIR
and the executed arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nir
from repro.backend.cm2.partition import Cm2Compiler
from repro.lowering.check import check_program
from repro.machine import Machine, slicewise_model
from repro.pipeline import (
    Pass,
    PassContext,
    PassManager,
    PassRegistry,
    UnknownPassError,
    unwrap_body,
    wrap_body,
)
from repro.runtime.host import HostExecutor
from repro.transform import (
    PASSES,
    LoopPromoter,
    MaskPadder,
    Normalizer,
    Options,
    TransformedProgram,
    TransformReport,
    optimize,
    pipeline_identity,
)
from repro.transform.passes import (
    _block_recursive,
    _eliminate_dead_scalar_stores,
)

from .conftest import lower

PROGRAM = """
integer i
real a(8,8), b(8,8), c(8,8)
a = 1.0
do i = 1, 4
  b(i,:) = a(i,:) * 2.0
end do
c = cshift(a, 1, 1) + b
where (c > 1.0)
  c = c - 1.0
end where
end
"""


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_default_order_is_the_paper_pipeline(self):
        # racecheck/commaudit bracket the paper pipeline: report-only
        # analyses, default-off, racecheck on the lowered input and
        # commaudit on what the backend will actually compile.
        assert PASSES.names() == ["racecheck", "promote", "normalize",
                                  "pad_masks", "dse", "block", "fuse_exec",
                                  "recheck", "commaudit"]

    def test_unknown_pass_is_loud(self):
        with pytest.raises(UnknownPassError) as exc:
            PASSES.get("vectorize")
        assert "vectorize" in str(exc.value)
        assert "normalize" in str(exc.value)  # names the known passes

    def test_duplicate_registration_rejected(self):
        reg = PassRegistry()
        p = Pass(name="x", scope="body", run=lambda ctx: ctx.node)
        reg.register(p)
        with pytest.raises(ValueError):
            reg.register(p)

    def test_bad_scope_rejected(self):
        with pytest.raises(ValueError):
            Pass(name="x", scope="galaxy", run=lambda ctx: ctx.node)

    def test_identity_orders_and_configures(self):
        ident = pipeline_identity(Options())
        assert [e["name"] for e in ident] == [
            "promote", "normalize", "pad_masks", "dse", "block",
            "fuse_exec", "recheck"]
        block = dict(ident[4]["config"])
        assert block == {"block": True, "fuse": True, "neighborhood": False}

    def test_identity_drops_disabled_passes(self):
        ident = pipeline_identity(Options.naive())
        assert [e["name"] for e in ident] == [
            "promote", "normalize", "dse", "recheck"]


# -- golden pass orders -----------------------------------------------------


class TestGoldenPassOrders:
    def test_default_pipeline_executes_all_passes(self):
        tp = optimize(lower(PROGRAM), Options())
        assert tp.trace.executed() == [
            "promote", "normalize", "pad_masks", "dse", "block",
            "fuse_exec", "recheck"]

    def test_naive_pipeline_skips_blocking_and_padding(self):
        tp = optimize(lower(PROGRAM), Options.naive())
        assert tp.trace.executed() == [
            "promote", "normalize", "dse", "recheck"]
        disabled = [t.name for t in tp.trace.passes if not t.enabled]
        assert disabled == ["racecheck", "pad_masks", "block",
                            "fuse_exec", "commaudit"]

    def test_ablation_pipeline_no_promotion_no_fuse(self):
        tp = optimize(lower(PROGRAM),
                      Options(promote_loops=False, fuse=False))
        assert tp.trace.executed() == [
            "normalize", "pad_masks", "dse", "block", "fuse_exec",
            "recheck"]

    def test_fuse_only_still_runs_block_pass(self):
        tp = optimize(lower(PROGRAM), Options(block=False))
        assert "block" in tp.trace.executed()


# -- trace ------------------------------------------------------------------


class TestTrace:
    def test_timings_and_ir_sizes_recorded(self):
        tp = optimize(lower(PROGRAM), Options())
        for t in tp.trace.passes:
            if t.enabled:
                assert t.seconds >= 0.0
                assert t.ir_before > 0 and t.ir_after > 0
        assert tp.trace.total_seconds > 0.0
        # Fusion shrinks the IR on this program.
        block = tp.trace.timing("block")
        assert block is not None and block.ir_delta <= 0

    def test_to_dict_round_trips_to_json(self):
        import json

        tp = optimize(lower(PROGRAM), Options())
        payload = json.loads(json.dumps(tp.trace.to_dict()))
        assert payload["total_seconds"] > 0
        assert [p["name"] for p in payload["passes"]] == PASSES.names()
        assert all(set(p) >= {"name", "enabled", "seconds", "ir_before",
                              "ir_after", "ir_delta"}
                   for p in payload["passes"])

    def test_summary_lines_render(self):
        tp = optimize(lower(PROGRAM), Options())
        lines = tp.trace.summary_lines()
        assert any("normalize" in line for line in lines)
        assert "total" in lines[-1]

    def test_trace_survives_pickling(self):
        import pickle

        tp = optimize(lower(PROGRAM), Options())
        trace = pickle.loads(pickle.dumps(tp.trace))
        assert trace.executed() == tp.trace.executed()


# -- dump-after -------------------------------------------------------------


class TestDumpAfter:
    def test_captures_pretty_nir(self):
        tp = optimize(lower(PROGRAM), Options(),
                      dump_after=("normalize", "block"))
        assert set(tp.trace.dumps) == {"normalize", "block"}
        assert "MOVE" in tp.trace.dumps["normalize"]

    def test_unknown_pass_raises_before_running(self):
        with pytest.raises(UnknownPassError):
            optimize(lower(PROGRAM), Options(), dump_after=("bogus",))

    def test_disabled_pass_produces_no_dump(self):
        tp = optimize(lower(PROGRAM), Options.naive(),
                      dump_after=("pad_masks",))
        assert "pad_masks" not in tp.trace.dumps


# -- manager scope handling -------------------------------------------------


class TestManagerScopes:
    def test_body_pass_sees_unwrapped_tree(self):
        seen = {}

        def probe(ctx: PassContext):
            seen["node"] = ctx.node
            return ctx.node

        reg = PassRegistry()
        reg.register(Pass(name="probe", scope="body", run=probe))
        low = lower(PROGRAM)
        manager = PassManager(reg.pipeline())
        program, trace = manager.run(low.nir, low.env, Options(),
                                     TransformReport())
        assert not isinstance(seen["node"], (nir.WithDomain, nir.WithDecl,
                                             nir.Program))
        assert isinstance(program, nir.Program)
        assert trace.executed() == ["probe"]

    def test_disabled_passes_are_recorded_not_run(self):
        ran = []

        def never(ctx):
            ran.append(True)
            return ctx.node

        reg = PassRegistry()
        reg.register(Pass(name="off", scope="program", run=never,
                          enabled=lambda o: False))
        low = lower(PROGRAM)
        _, trace = PassManager(reg.pipeline()).run(
            low.nir, low.env, Options(), TransformReport())
        assert not ran
        assert trace.passes[0].enabled is False


# -- equivalence with the legacy hand-wired pipeline ------------------------


def legacy_optimize(lowered, options: Options) -> TransformedProgram:
    """The pre-refactor ``optimize()`` wiring, replayed verbatim."""
    env = lowered.env
    report = TransformReport()
    program = lowered.nir
    if options.promote_loops:
        promoter = LoopPromoter(env)
        program = promoter.promote(program)
        report.promotion = promoter.report
    normalizer = Normalizer(env, comm_cse=options.comm_cse,
                            neighborhood=options.neighborhood)
    program = normalizer.normalize(program)
    report.normalize = normalizer.report
    body = unwrap_body(program)
    if options.pad_masks:
        padder = MaskPadder(env)
        body = padder.pad_program(body)
        report.masking = padder.report
    body = _eliminate_dead_scalar_stores(
        body, report.promotion.promoted_indices)
    if options.block or options.fuse:
        body = _block_recursive(body, env, options, report.blocking)
    program = wrap_body(body, env, program.name)
    result = TransformedProgram(nir=program, env=env, options=options,
                                report=report)
    if options.recheck:
        check_program(program, env)
    return result


def _run_backend(tp: TransformedProgram) -> dict[str, np.ndarray]:
    compiler = Cm2Compiler(tp.env)
    host_program = compiler.compile_program(tp.nir)
    machine = Machine(slicewise_model(64))
    HostExecutor(machine).run(host_program)
    return {name: home.data for name, home in machine.arrays.items()}


option_strategy = st.builds(
    Options,
    promote_loops=st.booleans(),
    comm_cse=st.booleans(),
    block=st.booleans(),
    fuse=st.booleans(),
    pad_masks=st.booleans(),
)


class TestLegacyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(options=option_strategy)
    def test_bit_identical_nir_and_arrays(self, options):
        new = optimize(lower(PROGRAM), options)
        old = legacy_optimize(lower(PROGRAM), options)
        assert nir.pretty(new.nir) == nir.pretty(old.nir)
        new_arrays = _run_backend(new)
        old_arrays = _run_backend(old)
        assert set(new_arrays) == set(old_arrays)
        for name, data in new_arrays.items():
            np.testing.assert_array_equal(
                data, old_arrays[name],
                err_msg=f"array {name!r} not bit-identical")

    def test_reports_match_legacy(self):
        new = optimize(lower(PROGRAM), Options())
        old = legacy_optimize(lower(PROGRAM), Options())
        assert new.report.promotion.promoted == old.report.promotion.promoted
        assert new.report.masking.padded == old.report.masking.padded
        assert new.report.blocking.phases_in == old.report.blocking.phases_in
