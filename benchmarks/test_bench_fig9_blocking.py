"""Experiment Fig. 9: the domain-blocking transformation.

The paper's example: three MOVEs (two over domain alpha, one serial
diagonal over beta) are rearranged and composed so that the like-domain
moves form one computation block — "the shape equivalent of loop
fusion".  The benchmark verifies the 3-phases-to-2 restructuring and
measures its executed effect: fewer PEAC calls and fewer total cycles on
the simulated machine.
"""

import numpy as np

from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model
from repro.programs.kernels import blocking_source
from repro.transform import Options

from .conftest import record

N = 256


def run_pair():
    src = blocking_source(N)
    blocked = compile_source(src)
    unblocked = compile_source(src, CompilerOptions(
        transform=Options(block=False, fuse=False, pad_masks=False)))
    rb = blocked.run(Machine(slicewise_model()))
    ru = unblocked.run(Machine(slicewise_model()))
    ref = run_reference(parse_program(src))
    for res in (rb, ru):
        for name in ref.arrays:
            np.testing.assert_array_equal(res.arrays[name],
                                          ref.arrays[name])
    return blocked, unblocked, rb, ru


def test_fig9_domain_blocking(benchmark):
    blocked, unblocked, rb, ru = benchmark.pedantic(run_pair, rounds=1,
                                                    iterations=1)
    record(
        benchmark,
        naive_moves=3,                      # as written in the figure
        blocked_compute_blocks=blocked.partition.compute_blocks,
        unblocked_compute_blocks=unblocked.partition.compute_blocks,
        paper_blocked_phases=2,
        fused=blocked.transformed.report.blocking.fused_blocks,
        blocked_calls=rb.stats.node_calls,
        unblocked_calls=ru.stats.node_calls,
        blocked_cycles=rb.stats.total_cycles,
        unblocked_cycles=ru.stats.total_cycles,
        cycle_ratio=ru.stats.total_cycles / rb.stats.total_cycles,
    )
    # The alpha-domain moves fuse into one block; the diagonal stays
    # its own (communication) phase: 1 compute block + 1 gather.
    assert blocked.partition.compute_blocks == 1
    assert unblocked.partition.compute_blocks == 2
    assert rb.stats.node_calls < ru.stats.node_calls
    assert rb.stats.total_cycles <= ru.stats.total_cycles
