"""Service layer: compile-cache latency and worker-pool throughput.

Two experiments, both landing in ``BENCH_service.json`` at the repo
root:

* **cold vs warm compile** — the SWE example compiled through a fresh
  :class:`~repro.service.cache.CompileCache` (parse + compile + pickle
  + write) versus served from it.  Warm is measured at both tiers:
  ``warm`` is the in-process memo hit (what a long-running ``repro
  serve`` pays per request after the first) and ``warm_disk`` is a
  fresh process's first hit (stat + read + unpickle + plan re-attach).
  The asserted floor applies to the memo tier.
* **incremental recompile** — the SWE example compiled cold versus
  recompiled through the content-addressed artifact store
  (:mod:`repro.service.store`) after a *tail edit* (a pipeline-tail
  config change): each round warms a fresh store with the base
  configuration and times the edited compile, which reuses the front
  and prefix-pass artifacts and recompiles only the tail.  The
  asserted floor is ``REPRO_SERVICE_MIN_INCR_SPEEDUP`` (default 5x).
* **batch throughput** — the same job file pushed through a
  :class:`~repro.service.pool.WorkerPool` with one and with two
  workers, uncached so every job is compute-bound.  On a multi-core
  host the two-worker pool must actually scale (floor 1.5x); on a
  single core the pool can only tie, so the scaling floor is asserted
  only when ``os.cpu_count() >= 2`` and real worker processes are
  available — the payload records ``cpus``, ``scaling_asserted``, and
  a human ``skip_reason`` either way.

Knobs: ``REPRO_SWE_N`` (grid, default 512), ``REPRO_SERVICE_ROUNDS``
(timed rounds per cache state, default 5),
``REPRO_SERVICE_MIN_WARM_SPEEDUP`` (cold/warm floor, default 10),
``REPRO_SERVICE_MIN_INCR_SPEEDUP`` (cold/incremental floor, default 5),
``REPRO_SERVICE_JOBS`` (batch size, default 6),
``REPRO_SERVICE_MIN_POOL_SCALING`` (two-worker throughput floor on
multi-core hosts, default 1.5).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.programs.kernels import heat_source
from repro.programs.swe import swe_source
from repro.service.cache import CompileCache, cache_key
from repro.service.pool import WorkerPool

from .conftest import SWE_N

ROUNDS = int(os.environ.get("REPRO_SERVICE_ROUNDS", "5"))
MIN_WARM_SPEEDUP = float(
    os.environ.get("REPRO_SERVICE_MIN_WARM_SPEEDUP", "10"))
JOBS = int(os.environ.get("REPRO_SERVICE_JOBS", "6"))
MIN_INCR_SPEEDUP = float(
    os.environ.get("REPRO_SERVICE_MIN_INCR_SPEEDUP", "5"))
MIN_POOL_SCALING = float(
    os.environ.get("REPRO_SERVICE_MIN_POOL_SCALING", "1.5"))

_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")


def _merge_payload(section: str, data: dict) -> None:
    """Fold one experiment's results into the shared JSON file."""
    payload = {}
    try:
        with open(_OUT) as f:
            payload = json.load(f)
    except (OSError, ValueError):
        pass
    payload["benchmark"] = "service"
    payload[section] = data
    with open(_OUT, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def test_compile_cache_cold_vs_warm(tmp_path):
    source = swe_source(n=SWE_N, itmax=2)
    root = str(tmp_path / "cache")
    cache = CompileCache(root)

    cold, warm, warm_disk = [], [], []
    for _ in range(ROUNDS):
        cache.clear()
        t0 = time.perf_counter()
        _, hit = cache.compile(source)
        cold.append(time.perf_counter() - t0)
        assert not hit
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        _, hit = cache.compile(source)
        warm.append(time.perf_counter() - t0)
        assert hit
    assert cache.memo_hits == ROUNDS
    for _ in range(ROUNDS):
        fresh = CompileCache(root)  # empty memo: pays the unpickle
        t0 = time.perf_counter()
        _, hit = fresh.compile(source)
        warm_disk.append(time.perf_counter() - t0)
        assert hit and fresh.memo_hits == 0

    cold_med = statistics.median(cold)
    warm_med = statistics.median(warm)
    disk_med = statistics.median(warm_disk)
    speedup = cold_med / warm_med
    data = {
        "grid": f"{SWE_N}x{SWE_N}",
        "rounds": ROUNDS,
        "cold": {"seconds": cold, "median": cold_med, "min": min(cold)},
        "warm": {"seconds": warm, "median": warm_med, "min": min(warm)},
        "warm_disk": {"seconds": warm_disk, "median": disk_med,
                      "min": min(warm_disk)},
        "speedup": speedup,
        "speedup_disk": cold_med / disk_med,
        "entry_bytes": os.path.getsize(cache._path(cache_key(source))),
    }
    _merge_payload("compile_cache", data)

    print()
    print(f"    cold       median {cold_med * 1000:8.2f}ms  "
          f"min {min(cold) * 1000:8.2f}ms")
    print(f"    warm memo  median {warm_med * 1000:8.2f}ms  "
          f"min {min(warm) * 1000:8.2f}ms")
    print(f"    warm disk  median {disk_med * 1000:8.2f}ms  "
          f"min {min(warm_disk) * 1000:8.2f}ms")
    print(f"    warm speedup {speedup:.1f}x (memo), "
          f"{data['speedup_disk']:.1f}x (disk)")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm-cache compile only {speedup:.1f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP:.1f}x): {data}")


def test_incremental_recompile_beats_cold(tmp_path):
    """Cold compile vs incremental recompile after a tail-only edit."""
    import dataclasses

    from repro.driver.compiler import CompilerOptions, compile_source
    from repro.service.store import ArtifactStore
    from repro.transform import Options as TransformOptions

    source = swe_source(n=SWE_N, itmax=2)
    base = CompilerOptions()
    # The tail edit: disable the late recheck pass.  Only the pipeline
    # tail changes, so the front, the prefix passes, and (through
    # content chaining) even the backend artifact stay reusable.
    edited = dataclasses.replace(
        base, transform=TransformOptions(recheck=False))

    cold, incr = [], []
    for round_no in range(ROUNDS):
        t0 = time.perf_counter()
        compile_source(source, edited, cache=False, incremental=False)
        cold.append(time.perf_counter() - t0)

        store = ArtifactStore(str(tmp_path / f"store{round_no}"))
        compile_source(source, base, cache=False, incremental=True,
                       store=store)  # warm: the pre-edit compile
        t0 = time.perf_counter()
        exe = compile_source(source, edited, cache=False,
                             incremental=True, store=store)
        incr.append(time.perf_counter() - t0)
        arts = exe.transformed.trace.artifacts
        assert arts["front"] == "hit"
        assert arts["passes"]["hits"] > 0

    cold_med = statistics.median(cold)
    incr_med = statistics.median(incr)
    speedup = cold_med / incr_med
    data = {
        "grid": f"{SWE_N}x{SWE_N}",
        "rounds": ROUNDS,
        "edit": "transform.recheck: true -> false",
        "cold": {"seconds": cold, "median": cold_med, "min": min(cold)},
        "incremental": {"seconds": incr, "median": incr_med,
                        "min": min(incr)},
        "speedup": speedup,
        "speedup_floor": MIN_INCR_SPEEDUP,
    }
    _merge_payload("incremental_recompile", data)

    print()
    print(f"    cold        median {cold_med * 1000:8.2f}ms  "
          f"min {min(cold) * 1000:8.2f}ms")
    print(f"    incremental median {incr_med * 1000:8.2f}ms  "
          f"min {min(incr) * 1000:8.2f}ms")
    print(f"    tail-edit recompile speedup {speedup:.1f}x")
    assert speedup >= MIN_INCR_SPEEDUP, (
        f"incremental tail-edit recompile only {speedup:.1f}x faster "
        f"than cold (floor {MIN_INCR_SPEEDUP:.1f}x): {data}")


def test_batch_throughput_scales_with_workers():
    # Distinct sources defeat any incidental caching; uncached pools
    # (cache=None) keep every job compute-bound.
    requests = [{"op": "run",
                 "source": heat_source(n=40 + 4 * i, steps=16),
                 "pes": 256}
                for i in range(JOBS)]

    results = {}
    modes = {}
    for workers in (1, 2):
        pool = WorkerPool(workers, cache=None)
        try:
            pool.map(requests[:1])  # warm up: fork + import cost
            t0 = time.perf_counter()
            responses = pool.map(requests)
            elapsed = time.perf_counter() - t0
        finally:
            modes[workers] = pool.mode
            pool.close()
        assert all(r["ok"] for r in responses)
        results[workers] = {"seconds": elapsed,
                            "jobs_per_second": len(requests) / elapsed,
                            "mode": modes[workers]}

    cpus = os.cpu_count() or 1
    scaling = (results[2]["jobs_per_second"]
               / results[1]["jobs_per_second"])
    multicore = cpus >= 2 and modes[2] == "pool"
    if multicore:
        skip_reason = None
    elif cpus < 2:
        skip_reason = f"single CPU (os.cpu_count() == {cpus}): two " \
                      f"workers can only tie"
    else:
        skip_reason = f"pool mode unavailable (fell back to " \
                      f"{modes[2]!r} mode)"
    data = {
        "jobs": len(requests),
        "cpus": cpus,
        "workers_1": results[1],
        "workers_2": results[2],
        "scaling": scaling,
        "scaling_asserted": multicore,
        "scaling_floor": MIN_POOL_SCALING,
        "skip_reason": skip_reason,
    }
    _merge_payload("batch_throughput", data)

    print()
    for w in (1, 2):
        print(f"    {w} worker(s): {results[w]['seconds']:.3f}s  "
              f"{results[w]['jobs_per_second']:.1f} jobs/s "
              f"({results[w]['mode']} mode)")
    print(f"    scaling {scaling:.2f}x on {cpus} cpu(s)")
    if multicore:
        assert scaling >= MIN_POOL_SCALING, (
            f"2-worker throughput only {scaling:.2f}x of 1-worker "
            f"(floor {MIN_POOL_SCALING:.1f}x): {data}")
    else:
        # One core (or no fork): two workers can only tie; just make
        # sure the pool machinery is not pathologically slower.
        assert scaling >= 0.5, f"pool overhead pathological: {data}"
