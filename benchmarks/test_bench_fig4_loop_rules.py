"""Experiment Fig. 4: the inductive LOOP rules over shapes.

Figure 4 defines serial loops by structural induction on shapes.  The
benchmark applies the rules (via full unrolling) to loops of increasing
size and rank and verifies the defining equations: the unrolled action
count equals the shape size, nesting follows rule 4's outer-first
composition, and unrolled execution matches looped execution.
"""

import numpy as np

from repro import nir
from repro.driver.compiler import compile_source
from repro.machine import Machine, slicewise_model
from repro.transform import unroll_do

from .conftest import record


def unroll_sweep():
    results = {}
    body = nir.move1(nir.SVar("i"),
                     nir.AVar("a", nir.Subscript((nir.SVar("i"),))))
    for n in (1, 4, 16, 64, 256):
        do = nir.Do(nir.SerialInterval(1, n), body, index_names=("i",))
        out = unroll_do(do)
        count = (len(out.actions) if isinstance(out, nir.Sequentially)
                 else 1)
        results[n] = count
    body2 = nir.move1(
        nir.Binary(nir.BinOp.MUL, nir.SVar("i"), nir.SVar("j")),
        nir.AVar("a", nir.Subscript((nir.SVar("i"), nir.SVar("j")))))
    prod = nir.Do(nir.ProdDom((nir.SerialInterval(1, 8),
                               nir.SerialInterval(1, 8))),
                  body2, index_names=("i", "j"))
    results["prod_8x8"] = len(unroll_do(prod).actions)
    return results


def test_fig4_unroll_counts(benchmark):
    results = benchmark.pedantic(unroll_sweep, rounds=1, iterations=1)
    record(benchmark, **{f"unrolled_n{k}": v for k, v in results.items()})
    for n in (1, 4, 16, 64, 256):
        assert results[n] == n
    assert results["prod_8x8"] == 64


def test_fig4_unrolled_equals_looped(benchmark):
    """Rule semantics: executing the loop equals executing its unrolling.

    Compared end-to-end through the compiler: the same serial recurrence
    run as a host loop and as a (promotion-rejected) sequence.
    """
    src = ("integer a(16)\ninteger i\na(1) = 1\n"
           "do 1 i=2,16\na(i) = a(i-1) + i\n1 continue\nend")
    # Manually unrolled twin:
    lines = ["integer a(16)", "a(1) = 1"]
    for i in range(2, 17):
        lines.append(f"a({i}) = a({i-1}) + {i}")
    lines.append("end")
    unrolled_src = "\n".join(lines)

    def run_both():
        looped = compile_source(src).run(Machine(slicewise_model(64)))
        unrolled = compile_source(unrolled_src).run(
            Machine(slicewise_model(64)))
        return looped, unrolled

    looped, unrolled = benchmark.pedantic(run_both, rounds=1, iterations=1)
    np.testing.assert_array_equal(looped.arrays["a"],
                                  unrolled.arrays["a"])
    record(benchmark,
           looped_host_cycles=looped.stats.host_cycles,
           unrolled_host_cycles=unrolled.stats.host_cycles)
