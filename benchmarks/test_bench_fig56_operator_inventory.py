"""Experiment Figs. 5/6: the NIR operator inventory.

Figures 5 and 6 are the catalogue of NIR's core and shape operators.
The benchmark exercises the whole vocabulary: it builds one NIR program
using every listed constructor, pretty-prints it, and round-trips it
through the structural visitor, reporting coverage counts.
"""

from repro import nir

from .conftest import record

CORE_OPERATORS = [
    "integer_32", "logical_32", "float_32", "float_64",       # types
    "DECL", "DECLSET", "INITIALIZED",                         # decls
    "BINARY", "UNARY", "SVAR", "SCALAR", "FCNCALL",
    "REF_IN", "COPY_IN",                                      # values
    "PROGRAM", "SEQUENTIALLY", "CONCURRENTLY", "MOVE",
    "IFTHENELSE", "WHILE", "REF_OUT", "COPY_OUT",
    "WITH_DECL", "SKIP",                                      # imperative
]
SHAPE_OPERATORS = [
    "point", "interval", "serial_interval", "prod_dom",       # shapes
    "dfield",                                                 # type bridge
    "AVAR", "subscript", "everywhere", "local_under",         # value bridge
    "DO",                                                     # imp bridge
]


def build_everything():
    alpha = nir.ProdDom((nir.Interval(1, 4), nir.Interval(1, 4)))
    decls = nir.DeclSet((
        nir.Decl("a", nir.DField(nir.DomainRef("alpha"), nir.FLOAT_64)),
        nir.Decl("x", nir.FLOAT_64),
        nir.Initialized("n", nir.INTEGER_32, nir.int_const(4)),
        nir.Decl("flag", nir.LOGICAL_32),
        nir.Decl("y", nir.FLOAT_32),
    ))
    body = nir.seq(
        nir.Move((
            nir.MoveClause(
                nir.TRUE,
                nir.Binary(nir.BinOp.ADD,
                           nir.LocalUnder(nir.DomainRef("alpha"), 1),
                           nir.LocalUnder(nir.DomainRef("alpha"), 2)),
                nir.AVar("a", nir.Everywhere())),
            nir.MoveClause(
                nir.Binary(nir.BinOp.GT, nir.AVar("a"), nir.int_const(2)),
                nir.Unary(nir.UnOp.NEG, nir.AVar("a")),
                nir.AVar("a", nir.Everywhere())),
        )),
        nir.move1(
            nir.FcnCall("sum", (nir.AVar("a", nir.Subscript((
                nir.IndexRange(nir.int_const(1), nir.int_const(2)),
                nir.IndexRange(None, None)))),)),
            nir.SVar("x")),
        nir.IfThenElse(
            nir.Binary(nir.BinOp.LT, nir.SVar("x"), nir.int_const(0)),
            nir.While(nir.Binary(nir.BinOp.LT, nir.SVar("x"),
                                 nir.int_const(0)),
                      nir.move1(nir.Binary(nir.BinOp.ADD, nir.SVar("x"),
                                           nir.int_const(1)),
                                nir.SVar("x"))),
            nir.Skip()),
        nir.Do(nir.SerialInterval(1, 4),
               nir.Concurrently((nir.Skip(), nir.RefOut(nir.SVar("x")),
                                 nir.CopyOut(nir.CopyIn("y")))),
               index_names=("i",)),
        nir.move1(nir.RefIn("y"), nir.SVar("x")),
    )
    return nir.Program(
        nir.WithDomain("alpha", alpha, nir.WithDecl(decls, body)))


def test_fig56_inventory(benchmark):
    program = benchmark.pedantic(build_everything, rounds=1, iterations=1)
    text = nir.pretty(program)
    nodes = list(nir.walk_all(program))
    kinds = {type(n).__name__ for n in nodes}
    record(
        benchmark,
        core_operators_listed=len(CORE_OPERATORS),
        shape_operators_listed=len(SHAPE_OPERATORS),
        distinct_node_kinds_exercised=len(kinds),
        total_nodes=len(nodes),
        pretty_printed_chars=len(text),
    )
    expected_kinds = {
        "Program", "WithDomain", "WithDecl", "DeclSet", "Decl",
        "Initialized", "Sequentially", "Concurrently", "Move",
        "MoveClause", "IfThenElse", "While", "Do", "Skip", "RefOut",
        "CopyOut", "Binary", "Unary", "SVar", "Scalar", "FcnCall",
        "AVar", "Everywhere", "Subscript", "IndexRange", "LocalUnder",
        "RefIn", "CopyIn", "Interval", "SerialInterval", "ProdDom",
        "DomainRef", "DField", "ScalarType",
    }
    assert expected_kinds <= kinds
    # The concrete syntax of the figures appears in the pretty-printing.
    for token in ("WITH_DOMAIN", "WITH_DECL", "DECLSET", "MOVE",
                  "SEQUENTIALLY", "CONCURRENTLY", "IFTHENELSE", "WHILE",
                  "DO(", "local_under", "everywhere", "subscript",
                  "dfield", "SCALAR", "SVAR", "AVAR", "FCNCALL",
                  "BINARY", "UNARY"):
        assert token in text, token
