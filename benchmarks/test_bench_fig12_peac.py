"""Experiment Fig. 12: naive vs optimized PEAC encodings of the SWE excerpt.

The paper shows the excerpt ``z = (fsdx*(u-tmp0) - fsdy*(u-tmp1)) /
(p_temp + tmp2)`` compiled two ways: a naive encoding of 14 body
instructions (6 loads, 7 arithmetic, 1 store) and an optimized encoding
of 9 issue slots using chained in-memory operands, a chained
multiply-add, and a dual-issued load.

The benchmark regenerates both encodings, counts instructions, slots and
memory traffic, and measures the per-trip cycle cost of each under the
slicewise cost model.
"""

from repro import nir
from repro.backend.cm2 import BackendOptions, compile_block
from repro.machine import cycles_per_trip, slicewise_model
from repro.peac import format_routine

from .conftest import record
from tests.conftest import transform

SOURCE = """
double precision, array(512,512) :: z, u, ptmp, tmp0, tmp1, tmp2
double precision fsdx, fsdy
fsdx = 0.04d0
fsdy = 0.025d0
z = (fsdx*(u - tmp0) - fsdy*(u - tmp1)) / (ptmp + tmp2)
end
"""


def build(options):
    tp = transform(SOURCE)
    body = tp.inner_body()
    actions = body.actions if isinstance(body, nir.Sequentially) else [body]
    move = [a for a in actions if isinstance(a, nir.Move)
            and isinstance(a.clauses[0].tgt, nir.AVar)][0]
    return compile_block(move, tp.env, tp.env.domains, options)


def test_fig12_naive_vs_optimized(benchmark):
    def run():
        return build(BackendOptions.naive()), build(BackendOptions())

    naive, opt = benchmark.pedantic(run, rounds=1, iterations=1)
    model = slicewise_model()
    naive_cycles = cycles_per_trip(naive.routine, model)
    opt_cycles = cycles_per_trip(opt.routine, model)
    record(
        benchmark,
        naive_instructions=naive.routine.instruction_count(),
        optimized_slots=opt.routine.instruction_count(),
        paper_naive_instructions=14,
        paper_optimized_slots=9,
        naive_memory_refs=naive.routine.memory_refs(),
        optimized_memory_refs=opt.routine.memory_refs(),
        naive_cycles_per_trip=naive_cycles,
        optimized_cycles_per_trip=opt_cycles,
        cycle_speedup=naive_cycles / opt_cycles,
    )
    print("\n--- naive encoding ---")
    print(format_routine(naive.routine))
    print("--- optimized encoding ---")
    print(format_routine(opt.routine))

    assert naive.routine.instruction_count() == 14
    assert opt.routine.instruction_count() <= 10
    assert opt_cycles < naive_cycles
    assert any(i.has_chained_mem for i in opt.routine.body)
    assert any(i.paired is not None for i in opt.routine.body)
    assert {i.op for i in opt.routine.body} & {"fmav", "fmsv"}
