"""Experiment §6-perf: the headline SWE comparison.

Paper (section 6): on the shallow-water equations benchmark,

* hand-coded \\*Lisp, fieldwise mode        peaked at 1.89 GFLOPS,
* the slicewise CM Fortran compiler v1.1   reached  2.79 GFLOPS,
* the Fortran-90-Y prototype               attained 2.99 GFLOPS.

The reproduction target is the *shape*: the ordering \\*Lisp < CMF <
F90Y, F90Y beating CMF by a few percent and \\*Lisp by ~1.6x.  Absolute
numbers depend on the simulated 2,048-PE CM/2 cost model (see DESIGN.md
for the calibration anchors).
"""

import numpy as np

from repro.baselines import compile_cmfortran, compile_starlisp
from repro.driver.compiler import compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, fieldwise_model, slicewise_model
from repro.programs.swe import swe_source

from .conftest import record

PAPER = {"starlisp": 1.89, "cmfortran": 2.79, "f90y": 2.99}


def run_all(n, steps):
    src = swe_source(n=n, itmax=steps)
    ref = run_reference(parse_program(src))
    out = {}
    out["starlisp"] = compile_starlisp(src).run(Machine(fieldwise_model()))
    out["cmfortran"] = compile_cmfortran(src).run(
        Machine(slicewise_model()))
    out["f90y"] = compile_source(src).run(Machine(slicewise_model()))
    for res in out.values():
        for name in ("u", "v", "p"):
            np.testing.assert_allclose(res.arrays[name], ref.arrays[name],
                                       rtol=1e-9)
    return out


def test_swe_three_way_comparison(benchmark, swe_grid):
    n, steps = swe_grid
    results = benchmark.pedantic(run_all, args=(n, steps), rounds=1,
                                 iterations=1)
    gf = {k: r.gflops() for k, r in results.items()}
    record(
        benchmark,
        grid=f"{n}x{n}",
        steps=steps,
        starlisp_gflops=gf["starlisp"],
        cmfortran_gflops=gf["cmfortran"],
        f90y_gflops=gf["f90y"],
        paper_starlisp=PAPER["starlisp"],
        paper_cmfortran=PAPER["cmfortran"],
        paper_f90y=PAPER["f90y"],
        ratio_f90y_over_cmf=gf["f90y"] / gf["cmfortran"],
        paper_ratio_f90y_over_cmf=PAPER["f90y"] / PAPER["cmfortran"],
        ratio_f90y_over_starlisp=gf["f90y"] / gf["starlisp"],
        paper_ratio_f90y_over_starlisp=PAPER["f90y"] / PAPER["starlisp"],
    )
    # The paper's ordering must reproduce.
    assert gf["starlisp"] < gf["cmfortran"] < gf["f90y"]
    # And the rough factors: F90Y beats CMF by percents, *Lisp by >1.4x.
    assert 1.0 < gf["f90y"] / gf["cmfortran"] < 1.35
    assert 1.3 < gf["f90y"] / gf["starlisp"] < 2.6


def test_swe_f90y_peak_fraction(benchmark, swe_grid):
    """F90Y sustains a plausible fraction of machine peak (the paper's
    2.99 GF was ~10-15% of the CM/2's chained-multiply-add peak)."""
    from repro.machine.weitek import peak_gflops

    n, steps = swe_grid
    result = benchmark.pedantic(
        lambda: compile_source(swe_source(n=n, itmax=steps)).run(
            Machine(slicewise_model())),
        rounds=1, iterations=1)
    frac = result.gflops() / peak_gflops()
    record(benchmark, f90y_gflops=result.gflops(),
           machine_peak=peak_gflops(), peak_fraction=frac)
    assert 0.03 < frac < 0.5
