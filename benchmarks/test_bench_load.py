"""Service load benchmark: concurrent clients against the asyncio
server, landing in ``BENCH_load.json`` at the repo root.

Two experiments:

* **mixed load** — ``REPRO_LOAD_CLIENTS`` concurrent asyncio clients
  drive a mixed multi-tenant compile/run workload (plus the coalesce
  wave) through an in-process server and full-size worker pool.  The
  payload records client-observed p50/p95/p99 latency, jobs/sec, the
  server's queue-wait distribution, singleflight hits/leaders, and
  admission stats.  Asserted: every request answered, at least one
  coalescing hit (the wave guarantees contention), and a jobs/sec
  floor.
* **singleflight exactness** — N clients fire an identical fresh
  compile at the same instant; the pool-job counter must move by
  exactly **one**.  Concurrency makes a perfect wave improbable on a
  loaded machine, so the experiment retries a few times with a fresh
  key — but a success is unambiguous: N responses, 1 pool job.

Knobs: ``REPRO_LOAD_CLIENTS`` (default 32), ``REPRO_LOAD_REQUESTS``
(total workload requests, default 192), ``REPRO_LOAD_TENANTS``
(default 4), ``REPRO_LOAD_MIN_JOBS_PER_SEC`` (throughput floor,
default 5).
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.service.loadgen import run_loadgen
from repro.service.pool import WorkerPool
from repro.service.server import ReproServer, send_request

CLIENTS = int(os.environ.get("REPRO_LOAD_CLIENTS", "32"))
REQUESTS = int(os.environ.get("REPRO_LOAD_REQUESTS", "192"))
TENANTS = int(os.environ.get("REPRO_LOAD_TENANTS", "4"))
MIN_JOBS_PER_SEC = float(
    os.environ.get("REPRO_LOAD_MIN_JOBS_PER_SEC", "5"))

_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_load.json")


def _merge_payload(section: str, data: dict) -> None:
    payload = {}
    try:
        with open(_OUT) as f:
            payload = json.load(f)
    except (OSError, ValueError):
        pass
    payload["benchmark"] = "load"
    payload[section] = data
    with open(_OUT, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def test_mixed_load_latency_and_coalescing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    result = run_loadgen(clients=CLIENTS, requests=REQUESTS,
                         tenants=TENANTS)
    result["cpus"] = os.cpu_count() or 1
    result["min_jobs_per_second"] = MIN_JOBS_PER_SEC
    _merge_payload("mixed_load", result)

    latency = result["latency_seconds"]
    flight = result["server"]["singleflight"]
    print()
    print(f"    {result['requests_completed']} responses / "
          f"{result['clients']} clients / "
          f"{result['tenants']} tenants in "
          f"{result['wall_seconds']:.2f}s  "
          f"({result['jobs_per_second']:.1f} jobs/s, "
          f"{result['pool']['workers']} worker(s))")
    print(f"    latency  p50 {latency['p50'] * 1e3:7.1f}ms  "
          f"p95 {latency['p95'] * 1e3:7.1f}ms  "
          f"p99 {latency['p99'] * 1e3:7.1f}ms")
    print(f"    coalesce {flight['hits']} hits / "
          f"{flight['leaders']} leaders  "
          f"pool jobs {result['server']['pool_jobs']}  "
          f"queue peak {result['server']['admission']['queue_peak']}")

    assert result["failure_count"] == 0, result["failures"]
    assert result["requests_completed"] == result["requests_sent"]
    # The coalesce wave makes singleflight activity a hard guarantee,
    # not a scheduling accident.
    assert flight["hits"] >= 1
    assert result["server"]["pool_jobs"] < result["requests_completed"]
    assert result["jobs_per_second"] >= MIN_JOBS_PER_SEC, (
        f"only {result['jobs_per_second']:.1f} jobs/s "
        f"(floor {MIN_JOBS_PER_SEC}): {result}")


def test_singleflight_exactness_n_compiles_one_job(tmp_path):
    """N concurrent identical compiles must cost exactly one pool job."""
    waiters = 8
    pool = WorkerPool(1, cache=str(tmp_path / "cache"))
    server = ReproServer(port=0, pool=pool)
    server.start()
    attempts = []
    try:
        for attempt in range(5):
            nonce = f"exact-{attempt}-{time.time_ns():x}"
            source = (f"program exact\n! nonce {nonce}\n"
                      f"integer, parameter :: n = 16\n"
                      f"double precision, array(n,n) :: a, b\n"
                      f"a = 1.5d0\nb = cshift(a, 1, 1) + a\n"
                      f"print *, sum(b)\nend program exact\n")
            before = send_request(server.address,
                                  {"op": "metrics"})["metrics"]
            barrier = threading.Barrier(waiters)
            responses = [None] * waiters

            def fire(i, src=source, b=barrier, out=responses):
                b.wait()
                out[i] = send_request(
                    server.address,
                    {"op": "compile", "source": src}, timeout=60.0)

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(waiters)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            after = send_request(server.address,
                                 {"op": "metrics"})["metrics"]
            pool_jobs = after["requests"] - before["requests"]
            coalesced = sum(1 for r in responses if r.get("coalesced"))
            attempts.append({"pool_jobs": pool_jobs,
                             "coalesced": coalesced})
            assert all(r["ok"] for r in responses)
            if pool_jobs == 1:
                break
        data = {
            "waiters": waiters,
            "attempts": attempts,
            "pool_jobs": attempts[-1]["pool_jobs"],
            "coalesced_waiters": attempts[-1]["coalesced"],
        }
        _merge_payload("singleflight_exactness", data)
        print()
        print(f"    {waiters} concurrent identical compiles -> "
              f"{data['pool_jobs']} pool job(s), "
              f"{data['coalesced_waiters']} coalesced waiter(s) "
              f"({len(attempts)} attempt(s))")
        assert data["pool_jobs"] == 1, (
            f"{waiters} identical compiles cost "
            f"{data['pool_jobs']} pool jobs across "
            f"{len(attempts)} attempts: {attempts}")
        assert data["coalesced_waiters"] == waiters - 1
    finally:
        server.stop()
        pool.close()
