"""Experiment §4.2/§6: ablation of the design choices on SWE.

The paper attributes Fortran-90-Y's performance to specific mechanisms:
blocking amortizes "PEAC subroutine calling time and the overhead of
receiving pointers and data from the front-end FIFO ... over more
floating point computations, in longer virtual subgrid loops"; chained
loads, multiply-adds, and overlapped memory accesses cut node cycles.

This benchmark switches each mechanism off individually on the SWE
workload and reports the slowdown it is responsible for.
"""

import numpy as np

from repro.backend.cm2.pe_compiler import BackendOptions
from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model
from repro.programs.swe import swe_source
from repro.transform import Options

from .conftest import SWE_N, SWE_STEPS, record

VARIANTS = {
    "full": CompilerOptions(),
    "no_blocking": CompilerOptions(
        transform=Options(block=False, fuse=False)),
    "no_padding": CompilerOptions(transform=Options(pad_masks=False)),
    "no_chaining": CompilerOptions(backend=BackendOptions(chaining=False)),
    "no_fma": CompilerOptions(backend=BackendOptions(fma=False)),
    "no_overlap": CompilerOptions(backend=BackendOptions(overlap=False)),
    "no_memoization": CompilerOptions(
        backend=BackendOptions(memoize=False)),
    "all_off": CompilerOptions.naive(),
}


def run_variants():
    src = swe_source(n=SWE_N, itmax=SWE_STEPS)
    ref = run_reference(parse_program(src))
    out = {}
    for name, options in VARIANTS.items():
        exe = compile_source(src, options)
        res = exe.run(Machine(slicewise_model()))
        np.testing.assert_allclose(res.arrays["p"], ref.arrays["p"],
                                   rtol=1e-9)
        out[name] = res
    return out


def test_ablation_each_mechanism_matters(benchmark):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    full = results["full"].stats.total_cycles
    slowdowns = {
        name: res.stats.total_cycles / full
        for name, res in results.items()
    }
    record(
        benchmark,
        gflops_full=results["full"].gflops(),
        **{f"slowdown_{k}": v for k, v in slowdowns.items()},
        calls_full=results["full"].stats.node_calls,
        calls_no_blocking=results["no_blocking"].stats.node_calls,
    )
    # Every optimization contributes or is close to neutral.  (Value
    # memoization can measure slightly *negative* here: an unmemoized
    # duplicate load is single-use and therefore chains into a free
    # in-memory operand, while the memoized value occupies a register —
    # a genuine CSE-versus-rematerialization tradeoff on this ISA.)
    for name, ratio in slowdowns.items():
        assert ratio >= 0.98, f"{name} markedly faster than full config"
    # The central claims: blocking, chaining and fma each matter.
    assert slowdowns["no_blocking"] > 1.01
    assert slowdowns["no_chaining"] > 1.01
    assert slowdowns["no_fma"] > 1.005
    assert slowdowns["all_off"] > slowdowns["no_blocking"]
    # Blocking shows up as call-count reduction.
    assert results["no_blocking"].stats.node_calls \
        > results["full"].stats.node_calls


def test_mask_padding_matters_on_strided_sections(benchmark):
    """SWE has no strided sections, so the headline ablation shows the
    padder as neutral there; red-black relaxation is its real workload:
    padding fuses each pair of disjoint checkerboard half-sweeps."""
    from repro.programs.kernels import redblack_source

    src = redblack_source(256, 2)

    def run():
        padded = compile_source(src)
        unpadded = compile_source(src, CompilerOptions(
            transform=Options(pad_masks=False)))
        ref = run_reference(parse_program(src))
        rp = padded.run(Machine(slicewise_model()))
        ru = unpadded.run(Machine(slicewise_model()))
        for res in (rp, ru):
            np.testing.assert_allclose(res.arrays["u"], ref.arrays["u"],
                                       rtol=1e-9)
        return padded, unpadded, rp, ru

    padded, unpadded, rp, ru = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    record(
        benchmark,
        sections_padded=padded.transformed.report.masking.padded,
        padded_calls=rp.stats.node_calls,
        unpadded_calls=ru.stats.node_calls,
        padded_cycles=rp.stats.total_cycles,
        unpadded_cycles=ru.stats.total_cycles,
        padding_speedup=ru.stats.total_cycles / rp.stats.total_cycles,
    )
    # Two static section assignments in the loop body get padded.
    assert padded.transformed.report.masking.padded == 2
    assert rp.stats.node_calls < ru.stats.node_calls
