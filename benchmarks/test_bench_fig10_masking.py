"""Experiment Fig. 10: blocking with parallel masked assignment.

The paper's four-statement example (two strided-section assignments to
B, full assignments to A and C) compiles — after mask padding and
disjoint-mask grouping — into exactly two PEAC routines.  The benchmark
verifies the structure and measures the executed call/cycle effect of
padding versus leaving the sections as separate region computations.
"""

import numpy as np

from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model
from repro.programs.kernels import where_source
from repro.transform import Options

from .conftest import record

N = 256


def run_pair():
    src = where_source(N)
    padded = compile_source(src)
    unpadded = compile_source(src, CompilerOptions(
        transform=Options(pad_masks=False)))
    rp = padded.run(Machine(slicewise_model()))
    ru = unpadded.run(Machine(slicewise_model()))
    ref = run_reference(parse_program(src))
    for res in (rp, ru):
        for name in ref.arrays:
            np.testing.assert_array_equal(res.arrays[name],
                                          ref.arrays[name])
    return padded, unpadded, rp, ru


def test_fig10_masked_blocking(benchmark):
    padded, unpadded, rp, ru = benchmark.pedantic(run_pair, rounds=1,
                                                  iterations=1)
    record(
        benchmark,
        sections_padded=padded.transformed.report.masking.padded,
        padded_compute_blocks=padded.partition.compute_blocks,
        unpadded_compute_blocks=unpadded.partition.compute_blocks,
        paper_peac_routines=2,
        biggest_block_clauses=max(padded.partition.block_clause_counts),
        padded_calls=rp.stats.node_calls,
        unpadded_calls=ru.stats.node_calls,
        padded_cycles=rp.stats.total_cycles,
        unpadded_cycles=ru.stats.total_cycles,
    )
    # "This fragment could be compiled into two PEAC routines."
    assert padded.partition.compute_blocks == 2
    assert padded.transformed.report.masking.padded == 2
    assert max(padded.partition.block_clause_counts) == 3
    assert rp.stats.node_calls < ru.stats.node_calls
