"""Experiment §5.2: spill cost and spill/overlap scheduling.

"Vector registers tend to be the limiting resource, so spill code is
generated where necessary, although it need not occur at the exact spill
site.  We overlap the resulting memory accesses with computation where
possible to minimize lost cycles, since a single vector spill-restore
pair costs 18 cycles — roughly equivalent to three single-precision
floating point vector operations."

The benchmark compiles a synthetic high-register-pressure kernel (a wide
balanced reduction tree over many live values), confirms the 18-cycle
anchor, counts spill traffic, and measures how much of it overlap hides.
"""

from repro import nir
from repro.backend.cm2 import BackendOptions, compile_block
from repro.machine import Machine, cycles_per_trip, slicewise_model
from repro.peac import NUM_VREGS

from .conftest import record
from tests.conftest import transform


def pressure_source(n_products: int, n_arrays: int = 6) -> str:
    """Many CSE-shared products live across two fused statements.

    ``out`` sums k pairwise products and ``out2`` multiplies the same
    products; value memoization keeps every product live from its
    definition in the first clause to its reuse in the second, so the
    pressure is ~k simultaneously-live vector values.
    """
    from itertools import combinations

    names = [f"q{i}" for i in range(n_arrays)]
    pairs = list(combinations(range(n_arrays), 2))[:n_products]
    decl = ("double precision, array(128,128) :: out, out2, "
            + ", ".join(names))
    prods = [f"(q{i} * q{j})" for i, j in pairs]
    return (f"{decl}\nout = {' + '.join(prods)}\n"
            f"out2 = {' * '.join(prods)}\nend")


def block_for(n_products, options):
    tp = transform(pressure_source(n_products))
    body = tp.inner_body()
    actions = body.actions if isinstance(body, nir.Sequentially) else [body]
    move = actions[0]
    return compile_block(move, tp.env, tp.env.domains, options)


def test_spill_anchor_and_overlap(benchmark):
    def run():
        overlapped = block_for(10, BackendOptions())
        bare = block_for(10, BackendOptions(overlap=False))
        return overlapped, bare

    overlapped, bare = benchmark.pedantic(run, rounds=1, iterations=1)
    model = slicewise_model()

    assert model.instr.load + model.instr.store == 18
    spills = bare.allocation.spills
    restores = bare.allocation.restores
    assert spills > 0, "the kernel must actually exceed 8 vector registers"

    bare_cycles = cycles_per_trip(bare.routine, model)
    over_cycles = cycles_per_trip(overlapped.routine, model)
    paired = sum(1 for i in overlapped.routine.body
                 if i.paired is not None)
    record(
        benchmark,
        vector_registers=NUM_VREGS,
        spills=spills,
        restores=restores,
        spill_pair_cycles=model.instr.load + model.instr.store,
        paper_spill_pair_cycles=18,
        cycles_per_trip_no_overlap=bare_cycles,
        cycles_per_trip_overlapped=over_cycles,
        memory_ops_paired=paired,
        cycles_hidden=bare_cycles - over_cycles,
    )
    assert over_cycles < bare_cycles
    assert paired > 0


def test_spill_traffic_grows_with_pressure(benchmark):
    def run():
        return {n: block_for(n, BackendOptions()).allocation.spills
                for n in (4, 8, 12, 14)}

    spills = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, **{f"spills_width{k}": v for k, v in spills.items()})
    assert spills[4] == 0           # fits in the register file
    assert spills[14] > spills[8]   # pressure shows up as spill traffic
