"""Experiment §5.3.2 (explicit data layout).

"The NIR source transformation stage might also benefit from extra
modules to provide services from the runtime system previously taken for
granted, such as explicit data layout."

The benchmark runs a column-stencil (all shifts along axis 2) under
three layouts of the 2-D grid and shows the directive steering the
communication bill: laying axis 2 ``serial`` keeps every shift on-PE;
laying it across all PEs maximizes boundary traffic.
"""

import numpy as np

from repro.driver.compiler import compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model

from .conftest import record

N = 512

PROGRAM = """
program colstencil
double precision, array({n},{n}) :: t, u
integer it
forall (i=1:{n}, j=1:{n}) t(i,j) = i * 0.25d0 + j
do it = 1, 4
   u = t + 0.125d0 * (cshift(t, 1, 2) + cshift(t, -1, 2) - 2.0d0 * t)
   t = u
end do
end program colstencil
"""

LAYOUTS = {
    "default": "",
    "axis2_serial": "!layout: t(news, serial)\n!layout: u(news, serial)\n",
    "axis2_spread": "!layout: t(serial, news)\n!layout: u(serial, news)\n",
}


def run_all():
    results = {}
    ref = None
    for name, directive in LAYOUTS.items():
        src = directive + PROGRAM.format(n=N)
        if ref is None:
            ref = run_reference(parse_program(src))
        res = compile_source(src).run(Machine(slicewise_model()))
        np.testing.assert_allclose(res.arrays["t"], ref.arrays["t"],
                                   rtol=1e-9)
        results[name] = res
    return results


def test_layout_steers_communication(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    info = {}
    for name, res in results.items():
        info[f"{name}_comm_cycles"] = res.stats.comm_cycles
        info[f"{name}_total_cycles"] = res.stats.total_cycles
    record(benchmark, **info)
    serial = results["axis2_serial"].stats
    spread = results["axis2_spread"].stats
    default = results["default"].stats
    # Keeping the shifted axis on-PE eliminates wire traffic for it...
    assert serial.comm_cycles < default.comm_cycles
    assert serial.comm_cycles < spread.comm_cycles
    # ...and wins outright on this shift-dominated kernel.
    assert serial.total_cycles < spread.total_cycles
