"""Experiment §6 "Direction of Effort": where execution time goes.

"During execution, the node processor and runtime libraries' speeds are
the limiting factor for performance; the SPARC front end just has to
keep up ...  As problem size increases, therefore, front end time
comprises a negligible fraction of the overall execution profile."

The benchmark sweeps SWE grid sizes and reports the host (front-end)
fraction of total simulated time, which must fall toward zero, plus the
prototype's compile turnaround (the development-time argument).
"""

import time

from repro.driver.compiler import compile_source
from repro.machine import Machine, slicewise_model
from repro.programs.swe import swe_source

from .conftest import record


def sweep():
    fractions = {}
    for n in (32, 128, 512):
        exe = compile_source(swe_source(n=n, itmax=2))
        res = exe.run(Machine(slicewise_model()))
        b = res.stats.breakdown()
        fractions[n] = (b["host"], b["call"], b["node"], b["comm"])
    return fractions


def test_effort_profile_host_fraction_vanishes(benchmark):
    fractions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        benchmark,
        host_fraction_n32=fractions[32][0],
        host_fraction_n128=fractions[128][0],
        host_fraction_n512=fractions[512][0],
        call_fraction_n32=fractions[32][1],
        call_fraction_n512=fractions[512][1],
        node_fraction_n512=fractions[512][2],
        comm_fraction_n512=fractions[512][3],
    )
    hosts = [fractions[n][0] for n in (32, 128, 512)]
    assert hosts[0] > hosts[1] > hosts[2]
    assert hosts[2] < 0.01  # negligible at scale
    # Dispatch overhead also amortizes away.
    assert fractions[512][1] < fractions[32][1]


def test_development_turnaround(benchmark):
    """The prototyping claim in miniature: compiling the full SWE
    program through every phase takes well under a second."""

    def compile_once():
        t0 = time.perf_counter()
        exe = compile_source(swe_source(n=512, itmax=2))
        return exe, time.perf_counter() - t0

    exe, elapsed = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    record(benchmark,
           compile_seconds=elapsed,
           peac_routines=len(exe.routines),
           node_instructions=exe.partition.node_instructions)
    assert elapsed < 5.0
