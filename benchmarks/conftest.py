"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md).  The *simulated* numbers — GFLOPS,
cycle counts, instruction counts — are the experiment results; they are
attached to ``benchmark.extra_info`` and printed as paper-vs-measured
rows.  Wall-clock timings reported by pytest-benchmark measure the
harness itself (compile + simulate) and demonstrate the "prototyping
turnaround" claim.
"""

from __future__ import annotations

import os

import pytest

# Grid size for the SWE experiments.  512 keeps the full suite fast;
# REPRO_SWE_N=1024 reproduces the CM-scale numbers quoted in
# EXPERIMENTS.md (front-end overheads amortize further).
SWE_N = int(os.environ.get("REPRO_SWE_N", "512"))
SWE_STEPS = int(os.environ.get("REPRO_SWE_STEPS", "2"))


def record(benchmark, **info):
    """Attach experiment results to the benchmark record and echo them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
    print()
    width = max(len(k) for k in info)
    for key, value in info.items():
        if isinstance(value, float):
            print(f"    {key:<{width}} = {value:.3f}")
        else:
            print(f"    {key:<{width}} = {value}")


@pytest.fixture
def swe_grid():
    return SWE_N, SWE_STEPS
