"""Experiment Fig. 8: shape-parameterized lowering of whole-array code.

The figure lowers ``L = 6; K = 2*K + 5`` (L(128), K(128,64)) into two
everywhere-MOVEs under WITH_DOMAIN scopes.  The benchmark checks the
lowering byte-for-byte against the figure's key fragments and measures
front-end throughput: how fast the five semantic equations lower
programs of growing statement count (the "minimal development/compile
turnaround" motif of the prototyping argument).
"""

import time

from repro import nir
from repro.frontend.parser import parse_program
from repro.lowering import check_program, lower_program

from .conftest import record

FIG8 = "INTEGER K(128,64), L(128)\nL = 6\nK = 2*K+5\nEND"


def lower_many(statements: int):
    lines = ["INTEGER K(128,64), L(128)"]
    for i in range(statements):
        lines.append("L = 6" if i % 2 == 0 else "K = 2*K+5")
    lines.append("END")
    src = "\n".join(lines)
    lowered = lower_program(parse_program(src))
    check_program(lowered.nir, lowered.env)
    return lowered


def test_fig8_lowering_structure(benchmark):
    lowered = benchmark.pedantic(
        lambda: lower_program(parse_program(FIG8)), rounds=1, iterations=1)
    text = nir.pretty(lowered.nir)
    fragments = [
        "WITH_DOMAIN(('alpha'",
        "WITH_DOMAIN(('beta'",
        "DECL('k', dfield({shape=domain 'alpha',element=integer_32}))",
        "DECL('l', dfield({shape=domain 'beta',element=integer_32}))",
        "(True, (SCALAR(integer_32,'6'), AVAR('l', everywhere)))",
        "BINARY(Mul, SCALAR(integer_32,'2'), AVAR('k', everywhere))",
    ]
    for frag in fragments:
        assert frag in text, frag
    record(benchmark,
           figure_fragments_matched=len(fragments),
           domains={k: str(v) for k, v in lowered.domains.items()})


def test_fig8_lowering_throughput(benchmark):
    def run():
        t0 = time.perf_counter()
        lowered = lower_many(200)
        elapsed = time.perf_counter() - t0
        return lowered, elapsed

    lowered, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    moves = nir.count_nodes(lowered.nir, nir.Move)
    record(benchmark,
           statements=200,
           moves_lowered=moves,
           seconds=elapsed,
           statements_per_second=200 / elapsed)
    assert moves == 200
