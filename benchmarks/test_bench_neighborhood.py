"""Experiment §5.3.2: the neighborhood computation model.

"There are, in practice, no reason why the compiler should adhere to a
single, restrictive programming model at the expense of flexibility.
For example, many codes would benefit from the ability to break the
CM/2's virtual processor runtime model, restricted to pointwise locality
and subgrid looping.  A more flexible model would allow the compiler to
... perform general neighborhood computations directly."

The benchmark compares the standard model (CSHIFT = full runtime copy
into a temporary) with the neighborhood model (CSHIFT = halo stream of
the node program, boundary exchange only) on three workloads and locates
the crossover: single-shift stencils win, double-shift stencils lose to
the standard model's communication CSE.
"""

import numpy as np

from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, slicewise_model
from repro.programs.kernels import heat_source, life_source
from repro.programs.swe import swe_source

from .conftest import SWE_N, SWE_STEPS, record


def compare(src):
    ref = run_reference(parse_program(src))
    std = compile_source(src).run(Machine(slicewise_model()))
    nb = compile_source(src, CompilerOptions.neighborhood()).run(
        Machine(slicewise_model()))
    for res in (std, nb):
        for name, expected in ref.arrays.items():
            np.testing.assert_allclose(res.arrays[name], expected,
                                       rtol=1e-9, atol=1e-12)
    return std, nb


def test_neighborhood_model_crossover(benchmark):
    def run():
        return {
            "heat": compare(heat_source(512, 4)),
            "life": compare(life_source(512, 2)),
            "swe": compare(swe_source(SWE_N, SWE_STEPS)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    info = {}
    for name, (std, nb) in results.items():
        info[f"{name}_speedup"] = std.stats.total_cycles \
            / nb.stats.total_cycles
        info[f"{name}_std_comm"] = std.stats.comm_cycles
        info[f"{name}_nbhd_comm"] = nb.stats.comm_cycles
        info[f"{name}_std_calls"] = std.stats.node_calls
        info[f"{name}_nbhd_calls"] = nb.stats.node_calls
    record(benchmark, **info)

    heat_std, heat_nb = results["heat"]
    life_std, life_nb = results["life"]
    swe_std, swe_nb = results["swe"]
    # Single-shift stencil: halos beat full CSHIFT copies.
    assert heat_nb.stats.total_cycles < heat_std.stats.total_cycles
    assert heat_nb.stats.comm_cycles < heat_std.stats.comm_cycles
    # Double-shift stencil: the standard model's comm CSE wins — the
    # crossover the paper's flexibility argument anticipates.
    assert life_nb.stats.total_cycles > life_std.stats.total_cycles
    # SWE sits near the crossover: within ten percent either way.
    ratio = swe_std.stats.total_cycles / swe_nb.stats.total_cycles
    assert 0.9 < ratio < 1.15
