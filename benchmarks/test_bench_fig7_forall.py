"""Experiment Fig. 7: FORALL lowering to a single parallel MOVE.

The figure lowers ``FORALL (i=1:32, j=1:32) A(i,j) = i+j`` to one MOVE
whose source adds two ``local_under`` coordinate fields.  The benchmark
verifies the structure at the figure's size, then sweeps grid sizes to
show the compiled FORALL executes as exactly one node call whose
simulated cost scales with the subgrid, not with the point count.
"""

import numpy as np

from repro import nir
from repro.driver.compiler import compile_source
from repro.frontend.parser import parse_program
from repro.lowering import check_program, lower_program
from repro.machine import Machine, slicewise_model

from .conftest import record


def source(n):
    return (f"INTEGER, ARRAY({n},{n}) :: A\n"
            f"FORALL (i=1:{n}, j=1:{n}) A(i,j) = i+j\nEND")


def sweep():
    out = {}
    for n in (32, 128, 512):
        exe = compile_source(source(n))
        res = exe.run(Machine(slicewise_model()))
        expected = (np.arange(1, n + 1)[:, None]
                    + np.arange(1, n + 1)[None, :])
        np.testing.assert_array_equal(res.arrays["a"], expected)
        out[n] = (res.stats.node_calls, res.stats.node_cycles)
    return out


def test_fig7_forall_single_move(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lowered = lower_program(parse_program(source(32)))
    check_program(lowered.nir, lowered.env)
    body = lowered.inner_body()
    assert isinstance(body, nir.Move)
    text = nir.pretty(lowered.nir)
    assert ("BINARY(Add, local_under(domain 'alpha',1), "
            "local_under(domain 'alpha',2))") in text

    record(
        benchmark,
        moves_after_lowering=1,
        node_calls_n32=results[32][0],
        node_calls_n512=results[512][0],
        node_cycles_n32=results[32][1],
        node_cycles_n512=results[512][1],
    )
    # One node call regardless of size; cycles track the subgrid length.
    assert all(calls == 1 for calls, _ in results.values())
    assert results[512][1] > results[32][1]
