"""Experiment §5.3.1: retargeting the specification to the CM/5.

"The CM/5 NIR compiler retains the majority of its structure and,
therefore, its specification from the CM/2 version ... Most importantly,
the new compiler can still take advantage of the machine-independent
blocking and vectorizing NIR transformations defined in the front end."

The benchmark compiles SWE for both targets from the same specification,
verifies identical results, reports the CM/5 three-way node split, and
confirms the machine-independent optimizations carried over unchanged
(same computation blocks, same fusion statistics).
"""

import numpy as np

from repro.driver.compiler import CompilerOptions, compile_source
from repro.driver.reference import run_reference
from repro.frontend.parser import parse_program
from repro.machine import Machine, cm5_model, slicewise_model
from repro.programs.swe import swe_source

from .conftest import record

N, STEPS = 256, 2


def run_both():
    src = swe_source(n=N, itmax=STEPS)
    ref = run_reference(parse_program(src))
    exe2 = compile_source(src, CompilerOptions(target="cm2"))
    exe5 = compile_source(src, CompilerOptions(target="cm5"))
    r2 = exe2.run(Machine(slicewise_model()))
    r5 = exe5.run(Machine(cm5_model()))
    for res in (r2, r5):
        np.testing.assert_allclose(res.arrays["p"], ref.arrays["p"],
                                   rtol=1e-9)
    return exe2, exe5, r2, r5


def test_cm5_retarget(benchmark):
    exe2, exe5, r2, r5 = benchmark.pedantic(run_both, rounds=1,
                                            iterations=1)
    record(
        benchmark,
        cm2_gflops=r2.gflops(),
        cm5_gflops=r5.gflops(),
        cm2_compute_blocks=exe2.partition.compute_blocks,
        cm5_compute_blocks=exe5.partition.compute_blocks,
        cm5_node_splits=len(exe5.partition.node_splits),
        cm5_vector_unit_share=exe5.partition.vu_fraction,
    )
    # The machine-independent transformations carry over verbatim.
    assert exe5.partition.compute_blocks == exe2.partition.compute_blocks
    assert exe5.transformed.report.blocking.block_lengths \
        == exe2.transformed.report.blocking.block_lengths
    # Every computation block received a three-way split, dominated by
    # the vector datapaths for this float-heavy code.
    assert len(exe5.partition.node_splits) \
        == exe5.partition.compute_blocks
    assert exe5.partition.vu_fraction > 0.8
    # The CM/5 (32 MHz, fat tree) outruns the CM/2 on the same program.
    assert r5.stats.seconds(cm5_model().clock_hz) \
        < r2.stats.seconds(slicewise_model().clock_hz)
