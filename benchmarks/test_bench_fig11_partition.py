"""Experiment Fig. 11: naive, blocked, and partitioned program graphs.

The figure shows a program alternating computations over shape A and
shape B with communications on the edges: naively one node per
statement; after blocking, like-shape nodes fuse; after partitioning,
computation nodes are cut out as PEAC procedures and the remainder
becomes host code.  The benchmark builds such a program and reports the
node counts at each of the three stages.
"""

from repro import nir
from repro.driver.compiler import CompilerOptions, compile_source
from repro.machine import Machine, slicewise_model
from repro.runtime import host as h
from repro.transform import Options

from .conftest import record

# Computations over shape A (32x32) and shape B (1024), with one
# A->B communication (a misaligned flattening copy is not expressible,
# so a cshift plays the edge role) and control allowing code motion.
SOURCE = """
double precision, array(64,64) :: a1, a2
double precision, array(4096) :: b1, b2
a1 = 1.0d0
b1 = 2.0d0
a2 = a1 * 2.0d0
b2 = b1 + 1.0d0
a1 = a2 + a1
b1 = b2 * b1
a2 = cshift(a1, 1, 1)
b2 = cshift(b1, 4)
end
"""


def run_all():
    naive = compile_source(SOURCE, CompilerOptions(
        transform=Options(block=False, fuse=False, pad_masks=False)))
    blocked = compile_source(SOURCE)
    r_naive = naive.run(Machine(slicewise_model()))
    r_blocked = blocked.run(Machine(slicewise_model()))
    return naive, blocked, r_naive, r_blocked


def test_fig11_partition_stages(benchmark):
    naive, blocked, r_naive, r_blocked = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    def graph_stats(exe):
        calls = sum(1 for op in exe.host_program.ops
                    if isinstance(op, h.NodeCall))
        comms = sum(1 for op in exe.host_program.ops
                    if isinstance(op, h.CommMove))
        host_ops = len(exe.host_program.ops)
        return calls, comms, host_ops

    n_calls, n_comms, n_host = graph_stats(naive)
    b_calls, b_comms, b_host = graph_stats(blocked)
    record(
        benchmark,
        statements=8,
        naive_compute_nodes=n_calls,
        blocked_compute_nodes=b_calls,
        communication_edges=b_comms,
        blocked_host_ops=b_host,
        naive_calls_executed=r_naive.stats.node_calls,
        blocked_calls_executed=r_blocked.stats.node_calls,
        call_overhead_cycles_naive=r_naive.stats.call_cycles,
        call_overhead_cycles_blocked=r_blocked.stats.call_cycles,
    )
    # Naive: one node per computational statement (6).  Blocked: the
    # A-shape and B-shape runs fuse to one node each (2).
    assert n_calls == 6
    assert b_calls == 2
    assert b_comms == n_comms == 2
    # The partition actually reduces executed dispatch overhead.
    assert r_blocked.stats.call_cycles < r_naive.stats.call_cycles
