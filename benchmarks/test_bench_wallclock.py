"""Wall-clock: compiled engines vs the interpreter oracle.

Unlike every other benchmark (which reports *simulated* GFLOPS), this
one times the harness itself: the SWE end-to-end run executed with
``exec_mode="interp"`` (the :class:`VectorExecutor` oracle),
``exec_mode="fast"`` (compiled routine plans + generated blocked
kernels + pooled buffers), and ``exec_mode="fused"`` (cross-routine
execution-plan fusion + whole-timestep mega-kernels + persistent
bindings).  A second, smaller run covers the heat kernel
(``examples/heat.f90``) whose single call per timestep exercises the
per-call fast path rather than cross-call batching.

Results land in ``BENCH_wallclock.json`` at the repo root: each engine
holds per-run seconds plus min/median.  Every run in a round is timed
after ``REPRO_WALLCLOCK_WARMUP`` untimed warm-up runs, and all
headline ratios are **min over min** — the minimum is the stable
statistic for a deterministic workload under scheduler noise (medians
are reported alongside for context).  The run also re-checks the
engines' contract: bit-identical arrays across all three engines.

Knobs: ``REPRO_SWE_N`` (grid, default 512), ``REPRO_WALLCLOCK_STEPS``
(time steps, default 8), ``REPRO_WALLCLOCK_ROUNDS`` (timed runs per
engine, default 5), ``REPRO_WALLCLOCK_WARMUP`` (untimed warm-up runs
per engine, default 3), ``REPRO_WALLCLOCK_MIN_SPEEDUP`` (fast-vs-
interp floor, default 2.5), ``REPRO_WALLCLOCK_MIN_FUSED`` (fused-vs-
fast floor, default 1.3).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.driver.compiler import compile_source
from repro.machine import Machine, slicewise_model
from repro.programs.kernels import heat_source
from repro.programs.swe import swe_source

from .conftest import SWE_N

STEPS = int(os.environ.get("REPRO_WALLCLOCK_STEPS", "8"))
ROUNDS = int(os.environ.get("REPRO_WALLCLOCK_ROUNDS", "5"))
WARMUP = int(os.environ.get("REPRO_WALLCLOCK_WARMUP", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_WALLCLOCK_MIN_SPEEDUP", "2.5"))
MIN_FUSED = float(os.environ.get("REPRO_WALLCLOCK_MIN_FUSED", "1.3"))

ENGINES = ("interp", "fast", "fused")

_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_wallclock.json")


def _run(exe, mode):
    machine = Machine(slicewise_model(), exec_mode=mode)
    t0 = time.perf_counter()
    result = exe.run(machine=machine)
    return time.perf_counter() - t0, result


def _check_contract(exe):
    """All engines must produce bit-identical arrays (warm-up doubles
    as the correctness gate); returns the reference results."""
    results = {mode: _run(exe, mode)[1] for mode in ENGINES}
    ref = results["interp"]
    for mode in ("fast", "fused"):
        for name in ref.arrays:
            assert (ref.arrays[name].tobytes()
                    == results[mode].arrays[name].tobytes()), (mode, name)
    assert ref.stats.to_dict() == results["fast"].stats.to_dict()
    # Fused charges its (modeled) dispatch savings, so its cycle count
    # is <= fast with identical invariant counters.
    su, sf = results["fused"].stats, results["fast"].stats
    assert su.total_cycles <= sf.total_cycles
    assert su.flops == sf.flops
    assert su.elements_computed == sf.elements_computed
    return results


def _time_engines(exe):
    """One batch per engine (interleaving makes the allocator state
    oscillate and every engine's timings noisy; batching gives each
    engine its own steady state).  The untimed warm-ups let each
    engine reach that state — the first runs after a process has
    churned memory pay page-reclaim costs regardless of engine."""
    times = {mode: [] for mode in ENGINES}
    for mode in ENGINES:
        for _ in range(WARMUP):
            _run(exe, mode)
        for _ in range(ROUNDS):
            secs, _ = _run(exe, mode)
            times[mode].append(secs)
    return times


def _engine_payload(times):
    return {mode: {"seconds": ts, "min": min(ts),
                   "median": statistics.median(ts)}
            for mode, ts in times.items()}


def _bench(name, source, grid):
    exe = compile_source(source)
    results = _check_contract(exe)
    times = _time_engines(exe)
    lo = {mode: min(ts) for mode, ts in times.items()}
    payload = {
        "benchmark": name,
        "grid": grid,
        "steps": STEPS,
        "rounds": ROUNDS,
        "warmup": WARMUP,
        **_engine_payload(times),
        "speedup": lo["interp"] / lo["fast"],          # min over min
        "speedup_fused": lo["fast"] / lo["fused"],
        "speedup_median": (statistics.median(times["interp"])
                           / statistics.median(times["fast"])),
        "simulated_gflops": results["fast"].gflops(),
        "simulated_gflops_fused": results["fused"].gflops(),
        "fusion": results["fused"].machine.fusion_summary(),
    }
    print()
    for mode in ENGINES:
        print(f"    {mode:<7} min {lo[mode]:.3f}s  median "
              f"{statistics.median(times[mode]):.3f}s")
    print(f"    fast  vs interp {payload['speedup']:.2f}x (min)")
    print(f"    fused vs fast   {payload['speedup_fused']:.2f}x (min), "
          f"simulated {payload['simulated_gflops_fused']:.3f} GFLOPS")
    return payload


def test_engine_wallclock_speedups():
    swe = _bench("swe-end-to-end", swe_source(n=SWE_N, itmax=STEPS),
                 f"{SWE_N}x{SWE_N}")
    heat_n = max(64, SWE_N // 2)
    heat = _bench("heat-jacobi", heat_source(heat_n, STEPS),
                  f"{heat_n}x{heat_n}")
    payload = dict(swe)  # SWE stays the top-level headline record
    payload["programs"] = {"swe": swe, "heat": heat}
    with open(_OUT, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    assert swe["speedup"] >= MIN_SPEEDUP, (
        f"fast engine speedup {swe['speedup']:.2f}x below floor "
        f"{MIN_SPEEDUP:.1f}x")
    assert swe["speedup_fused"] >= MIN_FUSED, (
        f"fused engine speedup {swe['speedup_fused']:.2f}x over fast "
        f"below floor {MIN_FUSED:.1f}x")
    if SWE_N >= 512:
        # The committed simulated-performance headline (ISSUE 6).
        assert swe["simulated_gflops_fused"] >= 2.99, swe
