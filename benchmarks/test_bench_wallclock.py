"""Wall-clock: compiled engines vs the interpreter oracle.

Unlike every other benchmark (which reports *simulated* GFLOPS), this
one times the harness itself: the SWE end-to-end run executed with
``exec_mode="interp"`` (the :class:`VectorExecutor` oracle),
``exec_mode="fast"`` (compiled routine plans + generated blocked
kernels + pooled buffers), and ``exec_mode="fused"`` (cross-routine
execution-plan fusion + whole-timestep mega-kernels + persistent
bindings).  A second, smaller run covers the heat kernel
(``examples/heat.f90``) whose single call per timestep exercises the
per-call fast path rather than cross-call batching.

Results land in ``BENCH_wallclock.json`` at the repo root: each engine
holds per-run seconds plus min/median.  Every run in a round is timed
after ``REPRO_WALLCLOCK_WARMUP`` untimed warm-up runs, and all
headline ratios are **median over median** — on shared/burstable VMs
the machine speed drifts in *both* directions (scheduler slowdowns
and CPU-frequency bursts), and the median is the statistic robust to
both; a burst landing in one engine's batch poisons min-based ratios.
Min-over-min ratios are recorded alongside (``*_min`` keys) for
context.  The run also re-checks the engines' contract: bit-identical
arrays across all engines and the host target.

A fourth column times the **host target** (the same source compiled
with ``target="host"``, run on its own :class:`HostMachine`): the CM
engines above simulate a machine while executing natively; the host
target drops the simulation fidelity constraints and retunes its
native kernels for the CPU actually running (``-march=native``), so it
is the floor for how fast this workload goes through the shared
pipeline.  Its output must stay bit-identical to the interp oracle.

Knobs: ``REPRO_SWE_N`` (grid, default 512), ``REPRO_WALLCLOCK_STEPS``
(time steps, default 8), ``REPRO_WALLCLOCK_ROUNDS`` (timed runs per
engine, default 5), ``REPRO_WALLCLOCK_WARMUP`` (untimed warm-up runs
per engine, default 3), ``REPRO_WALLCLOCK_MIN_SPEEDUP`` (fast-vs-
interp floor, default 2.5), ``REPRO_WALLCLOCK_MIN_FUSED`` (fused-vs-
fast floor, default 1.3), ``REPRO_WALLCLOCK_MIN_HOST`` (host-vs-fused
floor, default 0.95 — the margin is real but single-digit percent, so
the CI gate is relaxed below 1.0 against scheduler noise; the
committed BENCH_wallclock.json records host ahead of fused).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.driver.compiler import CompilerOptions, compile_source
from repro.machine import Machine, slicewise_model
from repro.programs.kernels import heat_source, life_source
from repro.programs.swe import swe_source
from repro.targets import build_machine

from .conftest import SWE_N

STEPS = int(os.environ.get("REPRO_WALLCLOCK_STEPS", "8"))
ROUNDS = int(os.environ.get("REPRO_WALLCLOCK_ROUNDS", "5"))
WARMUP = int(os.environ.get("REPRO_WALLCLOCK_WARMUP", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_WALLCLOCK_MIN_SPEEDUP", "2.5"))
MIN_FUSED = float(os.environ.get("REPRO_WALLCLOCK_MIN_FUSED", "1.3"))
MIN_HOST = float(os.environ.get("REPRO_WALLCLOCK_MIN_HOST", "0.95"))

ENGINES = ("interp", "fast", "fused")
COLUMNS = ENGINES + ("host",)

_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_wallclock.json")


def _run(exe, mode, host_exe=None):
    if mode == "host":
        exe, machine = host_exe, build_machine("host")
    else:
        machine = Machine(slicewise_model(), exec_mode=mode)
    t0 = time.perf_counter()
    result = exe.run(machine=machine)
    return time.perf_counter() - t0, result


def _check_contract(exe, host_exe):
    """All engines must produce bit-identical arrays (warm-up doubles
    as the correctness gate); returns the reference results."""
    results = {mode: _run(exe, mode, host_exe)[1] for mode in COLUMNS}
    ref = results["interp"]
    for mode in ("fast", "fused", "host"):
        for name in ref.arrays:
            assert (ref.arrays[name].tobytes()
                    == results[mode].arrays[name].tobytes()), (mode, name)
    assert ref.stats.to_dict() == results["fast"].stats.to_dict()
    # Fused charges its (modeled) dispatch savings, so its cycle count
    # is <= fast with identical invariant counters.
    su, sf = results["fused"].stats, results["fast"].stats
    assert su.total_cycles <= sf.total_cycles
    assert su.flops == sf.flops
    assert su.elements_computed == sf.elements_computed
    return results


def _time_engines(exe, host_exe):
    """One batch per engine (interleaving makes the allocator state
    oscillate and every engine's timings noisy; batching gives each
    engine its own steady state).  The untimed warm-ups let each
    engine reach that state — the first runs after a process has
    churned memory pay page-reclaim costs regardless of engine."""
    times = {mode: [] for mode in COLUMNS}
    for mode in COLUMNS:
        for _ in range(WARMUP):
            _run(exe, mode, host_exe)
        for _ in range(ROUNDS):
            secs, _ = _run(exe, mode, host_exe)
            times[mode].append(secs)
    return times


def _engine_payload(times):
    return {mode: {"seconds": ts, "min": min(ts),
                   "median": statistics.median(ts)}
            for mode, ts in times.items()}


def _bench(name, source, grid):
    exe = compile_source(source)
    host_exe = compile_source(source, CompilerOptions(target="host"))
    results = _check_contract(exe, host_exe)
    times = _time_engines(exe, host_exe)
    lo = {mode: min(ts) for mode, ts in times.items()}
    mid = {mode: statistics.median(ts) for mode, ts in times.items()}
    payload = {
        "benchmark": name,
        "grid": grid,
        "steps": STEPS,
        "rounds": ROUNDS,
        "warmup": WARMUP,
        **_engine_payload(times),
        "speedup": mid["interp"] / mid["fast"],    # median over median
        "speedup_fused": mid["fast"] / mid["fused"],
        "speedup_host": mid["fused"] / mid["host"],
        "speedup_min": lo["interp"] / lo["fast"],  # min over min, context
        "speedup_fused_min": lo["fast"] / lo["fused"],
        "speedup_host_min": lo["fused"] / lo["host"],
        "simulated_gflops": results["fast"].gflops(),
        "simulated_gflops_fused": results["fused"].gflops(),
        "fusion": results["fused"].machine.fusion_summary(),
        "host_fusion": results["host"].machine.fusion_summary(),
    }
    print()
    for mode in COLUMNS:
        print(f"    {mode:<7} min {lo[mode]:.3f}s  median "
              f"{mid[mode]:.3f}s")
    print(f"    fast  vs interp {payload['speedup']:.2f}x (median)")
    print(f"    fused vs fast   {payload['speedup_fused']:.2f}x (median), "
          f"simulated {payload['simulated_gflops_fused']:.3f} GFLOPS")
    print(f"    host  vs fused  {payload['speedup_host']:.2f}x (median)")
    return payload


def test_engine_wallclock_speedups():
    swe = _bench("swe-end-to-end", swe_source(n=SWE_N, itmax=STEPS),
                 f"{SWE_N}x{SWE_N}")
    heat_n = max(64, SWE_N // 2)
    heat = _bench("heat-jacobi", heat_source(heat_n, STEPS),
                  f"{heat_n}x{heat_n}")
    life_n = max(64, SWE_N // 2)
    life = _bench("game-of-life", life_source(life_n, STEPS),
                  f"{life_n}x{life_n}")
    payload = dict(swe)  # SWE stays the top-level headline record
    payload["programs"] = {"swe": swe, "heat": heat, "life": life}
    with open(_OUT, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    assert swe["speedup"] >= MIN_SPEEDUP, (
        f"fast engine speedup {swe['speedup']:.2f}x below floor "
        f"{MIN_SPEEDUP:.1f}x")
    assert swe["speedup_fused"] >= MIN_FUSED, (
        f"fused engine speedup {swe['speedup_fused']:.2f}x over fast "
        f"below floor {MIN_FUSED:.1f}x")
    assert swe["speedup_host"] >= MIN_HOST, (
        f"host target {swe['speedup_host']:.2f}x vs fused below floor "
        f"{MIN_HOST:.2f}x")
    if SWE_N >= 512:
        # The committed simulated-performance headline (ISSUE 6).
        assert swe["simulated_gflops_fused"] >= 2.99, swe
