"""Wall-clock: compiled fast-path engine vs the interpreter oracle.

Unlike every other benchmark (which reports *simulated* GFLOPS — those
numbers are identical across engines by construction), this one times
the harness itself: the SWE end-to-end run executed once with
``exec_mode="interp"`` (the :class:`VectorExecutor` oracle) and once
with ``exec_mode="fast"`` (compiled routine plans + generated blocked
kernels + pooled buffers).

Results land in ``BENCH_wallclock.json`` at the repo root:
``interp``/``fast`` hold per-run seconds plus min/median, ``speedup``
is the median-over-median ratio (``speedup_min`` the best-case ratio).
The run also re-checks the engines' contract: bit-identical arrays and
identical RunStats.

Knobs: ``REPRO_SWE_N`` (grid, default 512), ``REPRO_WALLCLOCK_STEPS``
(time steps, default 8), ``REPRO_WALLCLOCK_ROUNDS`` (timed runs per
engine, default 5), ``REPRO_WALLCLOCK_WARMUP`` (untimed warm-up runs
per engine, default 3), ``REPRO_WALLCLOCK_MIN_SPEEDUP`` (assert
floor, default 2.5; the tracked target is 3.0).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np

from repro.driver.compiler import compile_source
from repro.machine import Machine, slicewise_model
from repro.programs.swe import swe_source

from .conftest import SWE_N

STEPS = int(os.environ.get("REPRO_WALLCLOCK_STEPS", "8"))
ROUNDS = int(os.environ.get("REPRO_WALLCLOCK_ROUNDS", "5"))
WARMUP = int(os.environ.get("REPRO_WALLCLOCK_WARMUP", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_WALLCLOCK_MIN_SPEEDUP", "2.5"))

_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_wallclock.json")


def _run(exe, mode):
    machine = Machine(slicewise_model(), exec_mode=mode)
    t0 = time.perf_counter()
    result = exe.run(machine=machine)
    return time.perf_counter() - t0, result


def test_fast_engine_wallclock_speedup():
    exe = compile_source(swe_source(n=SWE_N, itmax=STEPS))

    # Warm-up runs double as the correctness contract: both engines
    # must produce bit-identical arrays and identical RunStats.
    _, ri = _run(exe, "interp")
    _, rf = _run(exe, "fast")
    for name in ri.arrays:
        assert ri.arrays[name].tobytes() == rf.arrays[name].tobytes(), name
    assert ri.stats.to_dict() == rf.stats.to_dict()

    # One batch per engine (interleaving the two makes the allocator
    # state oscillate and both engines' timings noisy; batching gives
    # each engine its own steady state, which is what a user sees).
    # The untimed warm-ups let each engine reach that steady state —
    # the first runs after a process has churned memory pay several
    # hundred ms of page reclaim regardless of engine.
    times = {"interp": [], "fast": []}
    for mode in ("interp", "fast"):
        for _ in range(WARMUP):
            _run(exe, mode)
        for _ in range(ROUNDS):
            secs, _ = _run(exe, mode)
            times[mode].append(secs)

    med = {m: statistics.median(ts) for m, ts in times.items()}
    lo = {m: min(ts) for m, ts in times.items()}
    speedup = med["interp"] / med["fast"]
    payload = {
        "benchmark": "swe-end-to-end",
        "grid": f"{SWE_N}x{SWE_N}",
        "steps": STEPS,
        "rounds": ROUNDS,
        "interp": {"seconds": times["interp"], "min": lo["interp"],
                   "median": med["interp"]},
        "fast": {"seconds": times["fast"], "min": lo["fast"],
                 "median": med["fast"]},
        "speedup": speedup,
        "speedup_min": lo["interp"] / lo["fast"],
        "simulated_gflops": rf.gflops(),  # engine-independent
    }
    with open(_OUT, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    print()
    print(f"    interp  min {lo['interp']:.3f}s  median "
          f"{med['interp']:.3f}s")
    print(f"    fast    min {lo['fast']:.3f}s  median {med['fast']:.3f}s")
    print(f"    speedup {speedup:.2f}x (median), "
          f"{payload['speedup_min']:.2f}x (min)")
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine speedup {speedup:.2f}x below floor "
        f"{MIN_SPEEDUP:.1f}x: {payload}")
