#!/usr/bin/env python3
"""Structured programs: subroutines, layout directives, and the CLI view.

Shows the two §5.3.2-flavoured extensions working together: a multi-unit
Fortran program whose subroutines are inline-expanded (call-by-reference
for variables, call-by-value temporaries for expressions), and
``!layout:`` directives steering the block geometry so the stencil's
shifted axis stays on-processor.
"""

import numpy as np

from repro import Machine, compile_source, parse_program, run_reference
from repro.frontend.parser import parse_source

SOURCE = """
!layout: field(news, serial)
!layout: work(news, serial)
program relax
integer, parameter :: n = 128
double precision, array(n,n) :: field, work
double precision residual
integer sweep

call initialize(field, 25.0d0)
do sweep = 1, 5
   call relax_columns(field, work)
   call relax_columns(work, field)
end do
residual = maxval(field) - minval(field)
print *, residual
end program relax

subroutine initialize(grid, amplitude)
double precision, array(128,128) :: grid
double precision amplitude
forall (i=1:128, j=1:128) grid(i,j) = amplitude * sin(i * 0.05d0) * cos(j * 0.04d0)
end subroutine initialize

subroutine relax_columns(src, dst)
double precision, array(128,128) :: src, dst
! Shifts run along axis 2 only; the layout directive keeps that axis
! inside each processing element, so these are local copies.
dst = 0.25d0 * (cshift(src, 1, 2) + cshift(src, -1, 2)) + 0.5d0 * src
end subroutine relax_columns
"""


def main() -> None:
    sf = parse_source(SOURCE)
    print(f"source units: {[u.name for u in sf.units]}")
    inlined = parse_program(SOURCE)
    print(f"after inline expansion: {len(inlined.body)} top-level "
          f"statements, {len(inlined.decls)} declaration groups, "
          f"no CALL remains: "
          f"{all(type(s).__name__ != 'CallStmt' for s in inlined.body)}")

    exe = compile_source(SOURCE)
    result = exe.run(Machine())
    ref = run_reference(parse_program(SOURCE))
    ok = np.allclose(result.arrays["field"], ref.arrays["field"])
    print(f"\nprogram output : {result.output}")
    print(f"matches oracle : {ok}")
    print(f"node calls     : {result.stats.node_calls}")
    print(f"comm cycles    : {result.stats.comm_cycles:,} "
          f"(layout keeps the shifted axis on-PE)")

    no_layout = "\n".join(l for l in SOURCE.splitlines()
                          if not l.startswith("!layout"))
    base = compile_source(no_layout).run(Machine())
    print(f"without layout : {base.stats.comm_cycles:,} comm cycles")


if __name__ == "__main__":
    main()
