! The shallow-water-equations benchmark of the paper's §6 (the
! SWE code of Sadourny 1975), at an example-sized 64x64 grid.
! Regenerate with: python -c "from repro.programs.swe import
! swe_source; print(swe_source(n=64, itmax=4), end='')"

program swe
integer, parameter :: n = 64
integer, parameter :: itmax = 4
double precision, array(n,n) :: u, v, p, unew, vnew, pnew
double precision, array(n,n) :: uold, vold, pold, cu, cv, z, h, psi
double precision dt, tdt, dx, dy, a, alpha, el, pi, tpi, di, dj, pcf
double precision fsdx, fsdy, tdts8, tdtsdx, tdtsdy
integer ncycle

dt = 90.0d0
tdt = dt
dx = 100000.0d0
dy = 100000.0d0
a = 1000000.0d0
alpha = 0.001d0
el = n * dx
pi = 3.14159265358979d0
tpi = pi + pi
di = tpi / n
dj = tpi / n
pcf = pi * pi * a * a / (el * el)
fsdx = 4.0d0 / dx
fsdy = 4.0d0 / dy

! Initial conditions: a doubly-periodic velocity streamfunction.
forall (i=1:n, j=1:n) psi(i,j) = a * sin((i - 0.5d0) * di) * sin((j - 0.5d0) * dj)
forall (i=1:n, j=1:n) p(i,j) = pcf * (cos(2.0d0 * (i - 1) * di) + cos(2.0d0 * (j - 1) * dj)) + 50000.0d0
u = -(cshift(psi, shift=1, dim=2) - psi) / dy
v = (cshift(psi, shift=1, dim=1) - psi) / dx

uold = u
vold = v
pold = p

do ncycle = 1, itmax
   ! Compute capital u, capital v, z and h.
   cu = 0.5d0 * (p + cshift(p, shift=-1, dim=1)) * u
   cv = 0.5d0 * (p + cshift(p, shift=-1, dim=2)) * v
   z = (fsdx * (v - cshift(v, shift=-1, dim=1)) - fsdy * (u - cshift(u, shift=-1, dim=2))) &
       / (cshift(cshift(p, shift=-1, dim=1), shift=-1, dim=2) + cshift(p, shift=-1, dim=2) + p + cshift(p, shift=-1, dim=1))
   h = p + 0.25d0 * (cshift(u, shift=1, dim=1) * cshift(u, shift=1, dim=1) + u * u &
       + cshift(v, shift=1, dim=2) * cshift(v, shift=1, dim=2) + v * v)

   tdts8 = tdt / 8.0d0
   tdtsdx = tdt / dx
   tdtsdy = tdt / dy

   ! Time tendencies.
   unew = uold + tdts8 * (cshift(z, shift=1, dim=2) + z) &
          * (cshift(cv, shift=1, dim=2) + cshift(cshift(cv, shift=-1, dim=1), shift=1, dim=2) &
             + cshift(cv, shift=-1, dim=1) + cv) &
          - tdtsdx * (h - cshift(h, shift=-1, dim=1))
   vnew = vold - tdts8 * (cshift(z, shift=1, dim=1) + z) &
          * (cshift(cu, shift=1, dim=1) + cshift(cshift(cu, shift=-1, dim=2), shift=1, dim=1) &
             + cshift(cu, shift=-1, dim=2) + cu) &
          - tdtsdy * (h - cshift(h, shift=-1, dim=2))
   pnew = pold - tdtsdx * (cshift(cu, shift=1, dim=1) - cu) - tdtsdy * (cshift(cv, shift=1, dim=2) - cv)

   if (ncycle > 1) then
      ! Robert-Asselin time smoothing.
      uold = u + alpha * (unew - 2.0d0 * u + uold)
      vold = v + alpha * (vnew - 2.0d0 * v + vold)
      pold = p + alpha * (pnew - 2.0d0 * p + pold)
   else
      tdt = tdt + tdt
      uold = u
      vold = v
      pold = p
   end if
   u = unew
   v = vnew
   p = pnew
end do
end program swe
