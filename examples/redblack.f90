program redblack
! Red-black Gauss-Seidel relaxation: the classic two-color sweep.
! Each step is two independent masked update phases (red points, then
! black points), so one compile produces several blocked computation
! phases -- the shape the parallel phase fan-out (`--incremental
! --phase-workers N`) compiles concurrently.
integer, parameter :: n = 32
integer, parameter :: steps = 4
double precision, array(n,n) :: u, avg
integer, array(n,n) :: color
integer it
forall (i=1:n, j=1:n) color(i,j) = mod(i + j, 2)
forall (i=1:n, j=1:n) u(i,j) = mod(i*5 + j*11, 13) * 1.0d0
do it = 1, steps
   avg = 0.25d0 * (cshift(u, shift=1, dim=1) + cshift(u, shift=-1, dim=1) &
         + cshift(u, shift=1, dim=2) + cshift(u, shift=-1, dim=2))
   where (color == 0)
      u = avg
   end where
   avg = 0.25d0 * (cshift(u, shift=1, dim=1) + cshift(u, shift=-1, dim=1) &
         + cshift(u, shift=1, dim=2) + cshift(u, shift=-1, dim=2))
   where (color == 1)
      u = avg
   end where
end do
print *, sum(u)
end program redblack
