#!/usr/bin/env python3
"""Quickstart: compile data-parallel Fortran 90 and run it on the CM/2.

Compiles a small whole-array program through the full Fortran-90-Y
pipeline, prints the generated PEAC node code and the host program,
executes it on the simulated 2,048-PE CM/2, and checks the results
against the numpy reference interpreter.
"""

import numpy as np

from repro import Machine, compile_source, parse_program, run_reference
from repro.peac import format_routine
from repro.runtime.host import format_host_program

SOURCE = """
program quickstart
integer, parameter :: n = 64
double precision, array(n,n) :: a, b, c
double precision total

! Whole-array parallelism: one virtual subgrid loop per phase.
forall (i=1:n, j=1:n) a(i,j) = sin(i * 0.05d0) + cos(j * 0.05d0)
b = 2.0d0 * a + 0.5d0
c = a * b + cshift(b, shift=1, dim=1)

where (c > 1.0d0)
   c = c - 1.0d0
elsewhere
   c = 0.0d0
end where

total = sum(c)
print *, total
end program quickstart
"""


def main() -> None:
    print("=== Compiling through the Fortran-90-Y pipeline ===")
    exe = compile_source(SOURCE)

    print(f"\ncomputation blocks : {exe.partition.compute_blocks}")
    print(f"communication      : {exe.partition.comm_phases}")
    print(f"reductions         : {exe.partition.reductions}")

    print("\n=== Generated PEAC node code ===")
    for name, routine in exe.routines.items():
        print(format_routine(routine))
        print()

    print("=== Host (front-end) program ===")
    print(format_host_program(exe.host_program))

    print("\n=== Executing on the simulated CM/2 (2,048 PEs) ===")
    result = exe.run(Machine())
    print(f"program output     : {result.output}")
    print(f"total cycles       : {result.stats.total_cycles:,}")
    print(f"node calls         : {result.stats.node_calls}")
    print(f"sustained          : {result.gflops():.3f} GFLOPS "
          f"(small problem; overhead dominates)")

    print("\n=== Verifying against the numpy reference interpreter ===")
    ref = run_reference(parse_program(SOURCE))
    for name in ("a", "b", "c"):
        match = np.allclose(result.arrays[name], ref.arrays[name])
        print(f"array {name}: {'OK' if match else 'MISMATCH'}")
    print(f"scalar total: compiled={result.scalars['total']:.6f} "
          f"reference={ref.scalars['total']:.6f}")


if __name__ == "__main__":
    main()
