#!/usr/bin/env python3
"""A guided tour of the compilation pipeline on the paper's figures.

Walks the Figure 9 (domain blocking) and Figure 10 (masked-assignment
blocking) example programs through every stage — parsing, semantic
lowering to NIR, loop promotion, normalization, mask padding, blocking,
and the host/node partition — printing the intermediate representations
the paper shows.
"""

from repro import BackendOptions, compile_source, nir  # type: ignore
from repro import parse_program
from repro.backend.cm2.pe_compiler import compile_block
from repro.lowering import lower_program
from repro.peac import format_routine
from repro.programs.kernels import blocking_source, where_source
from repro.transform import Options, optimize


def show_phases(title: str, body: nir.Imperative) -> None:
    actions = (body.actions if isinstance(body, nir.Sequentially)
               else [body])
    print(f"--- {title}: {len(actions)} phases ---")
    for a in actions:
        line = str(a).replace("\n", " ")
        print(f"  * {line[:110]}{'...' if len(line) > 110 else ''}")
    print()


def tour(label: str, source: str) -> None:
    print("=" * 72)
    print(f"{label}")
    print("=" * 72)
    print(source)

    lowered = lower_program(parse_program(source))
    print(f"domains: "
          f"{ {k: str(v) for k, v in lowered.domains.items()} }\n")
    show_phases("naive NIR (after the five semantic equations)",
                lowered.inner_body())

    optimized = optimize(lowered)
    show_phases("optimized NIR (promoted, normalized, padded, blocked)",
                optimized.inner_body())
    rep = optimized.report
    print(f"promotion: {rep.promotion.promoted} loops promoted; "
          f"masking: {rep.masking.padded} sections padded; "
          f"blocking: {rep.blocking.fused_blocks} fusions, "
          f"block lengths {rep.blocking.block_lengths}\n")

    exe = compile_source(source)
    print(f"partition: {exe.partition.compute_blocks} computation blocks, "
          f"{exe.partition.comm_phases} communications, "
          f"{exe.partition.serial_moves} serial moves\n")
    for name, routine in exe.routines.items():
        print(format_routine(routine))
        print()


def main() -> None:
    tour("Figure 9: domain blocking", blocking_source(64))
    tour("Figure 10: masked-assignment blocking", where_source(32))


if __name__ == "__main__":
    main()
