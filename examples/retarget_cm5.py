#!/usr/bin/env python3
"""Retargeting the specification: the CM/5 back end (section 5.3.1).

"The CM/5 NIR compiler retains the majority of its structure and,
therefore, its specification from the CM/2 version."  This example
compiles the same SWE program for both machines, showing that the entire
front end, lowering, and NIR transformation machinery is reused, and
reports the CM/5 node compiler's three-way split between the SPARC
scalar unit and the vector datapaths.
"""

import numpy as np

from repro import CompilerOptions, Machine, compile_source
from repro import parse_program, run_reference
from repro.machine import cm5_model, slicewise_model
from repro.programs.swe import swe_source


def main() -> None:
    src = swe_source(n=256, itmax=2)
    ref = run_reference(parse_program(src))

    print("=== CM/2 target ===")
    exe2 = compile_source(src, CompilerOptions(target="cm2"))
    res2 = exe2.run(Machine(slicewise_model()))
    ok2 = np.allclose(res2.arrays["p"], ref.arrays["p"], rtol=1e-9)
    print(f"compute blocks: {exe2.partition.compute_blocks}, "
          f"sustained {res2.gflops():.2f} GFLOPS, correct={ok2}")

    print("\n=== CM/5 target (same specification, new back end) ===")
    exe5 = compile_source(src, CompilerOptions(target="cm5"))
    res5 = exe5.run(Machine(cm5_model()))
    ok5 = np.allclose(res5.arrays["p"], ref.arrays["p"], rtol=1e-9)
    print(f"compute blocks: {exe5.partition.compute_blocks}, "
          f"sustained {res5.gflops():.2f} GFLOPS, correct={ok5}")

    print("\nThree-way node split (control processor handles the host "
          "program; per-block division below):")
    print(f"{'routine':<10} {'vector-unit':>12} {'sparc':>7} {'VU share':>9}")
    for split in exe5.partition.node_splits:
        print(f"{split.routine:<10} {split.vu_instructions:>12} "
              f"{split.sparc_instructions:>7} {split.vu_fraction:>8.0%}")
    print(f"\noverall vector-unit share: "
          f"{exe5.partition.vu_fraction:.0%} of node instructions")

    print("\nWhat was reused vs rewritten for the port:")
    print("  reused   : front end, semantic lowering, shape checking,")
    print("             all NIR transformations, PE code generator,")
    print("             host program structure")
    print("  new      : node-level three-way split, CM/5 cost model")


if __name__ == "__main__":
    main()
