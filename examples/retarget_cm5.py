#!/usr/bin/env python3
"""Retargeting the specification: every registered back end (§5.3.1).

"The CM/5 NIR compiler retains the majority of its structure and,
therefore, its specification from the CM/2 version."  This example
compiles the same SWE program for **every target in the registry** —
the list below grows whenever a new back end registers itself, with no
change to this script — and shows that the entire front end, lowering,
and NIR transformation machinery is reused per target.  Target-specific
reports follow: the CM/5 node compiler's three-way SPARC/vector-unit
split, and the host back end's native-kernel lowering audit.
"""

import numpy as np

from repro import CompilerOptions, compile_source
from repro import parse_program, run_reference
from repro.programs.swe import swe_source
from repro.targets import build_machine, targets


def main() -> None:
    src = swe_source(n=256, itmax=2)
    ref = run_reference(parse_program(src))

    results = {}
    print(f"{'target':<6} {'PEs':>5} {'blocks':>7} {'GFLOPS':>8} "
          f"{'correct':>8}  description")
    for target in targets():
        exe = compile_source(src, CompilerOptions(target=target.name))
        res = exe.run(build_machine(target.name))
        ok = np.allclose(res.arrays["p"], ref.arrays["p"], rtol=1e-9)
        results[target.name] = (exe, res)
        print(f"{target.name:<6} {res.machine.model.n_pes:>5} "
              f"{exe.partition.compute_blocks:>7} {res.gflops():>8.2f} "
              f"{str(ok):>8}  {target.description}")

    exe5, _ = results["cm5"]
    print("\nCM/5 three-way node split (control processor handles the "
          "host program; per-block division below):")
    print(f"{'routine':<10} {'vector-unit':>12} {'sparc':>7} {'VU share':>9}")
    for split in exe5.partition.node_splits:
        print(f"{split.routine:<10} {split.vu_instructions:>12} "
              f"{split.sparc_instructions:>7} {split.vu_fraction:>8.0%}")
    print(f"overall vector-unit share: "
          f"{exe5.partition.vu_fraction:.0%} of node instructions")

    exeh, resh = results["host"]
    print("\nHost lowering audit (which blocked phases compile to native "
          "per-element C loops):")
    for low in exeh.partition.lowerings:
        status = "native" if low.native_eligible else \
            f"blocked by {', '.join(low.blockers)}"
        print(f"  {low.routine:<10} {low.instructions:>3} instrs  {status}")
    print(f"native-eligible fraction: "
          f"{exeh.partition.native_fraction:.0%} of instructions")

    print("\nWhat each port rewrote (everything else is shared):")
    print("  cm5  : node-level three-way split, CM/5 cost model")
    print("  host : dispatch engine (native kernel tiers), measured "
          "cost model")


if __name__ == "__main__":
    main()
