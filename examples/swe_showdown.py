#!/usr/bin/env python3
"""The paper's headline experiment: SWE under three compilation models.

Reproduces section 6's comparison on the shallow-water equations:

* hand-coded \\*Lisp, fieldwise mode        (paper: 1.89 GFLOPS),
* CM Fortran v1.1, slicewise               (paper: 2.79 GFLOPS),
* the Fortran-90-Y prototype               (paper: 2.99 GFLOPS).

Run with ``--grid N`` to change the problem size (default 512; the paper
used CM-scale grids where front-end time is negligible).
"""

import argparse

import numpy as np

from repro import Machine, compile_source, parse_program, run_reference
from repro.baselines import compile_cmfortran, compile_starlisp
from repro.driver.metrics import summarize
from repro.machine import fieldwise_model, slicewise_model
from repro.programs.swe import swe_source

PAPER = {"*Lisp (fieldwise)": 1.89, "CM Fortran v1.1": 2.79,
         "Fortran-90-Y": 2.99}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", type=int, default=512)
    parser.add_argument("--steps", type=int, default=2)
    args = parser.parse_args()

    src = swe_source(n=args.grid, itmax=args.steps)
    print(f"SWE: {args.grid}x{args.grid} grid, {args.steps} time steps, "
          f"2,048 processing elements\n")

    ref = run_reference(parse_program(src))

    runs = []
    exe = compile_starlisp(src)
    runs.append(("*Lisp (fieldwise)",
                 exe.run(Machine(fieldwise_model())), exe))
    exe = compile_cmfortran(src)
    runs.append(("CM Fortran v1.1",
                 exe.run(Machine(slicewise_model())), exe))
    exe = compile_source(src)
    runs.append(("Fortran-90-Y", exe.run(Machine(slicewise_model())), exe))

    print(f"{'model':<20} {'measured':>9} {'paper':>7} "
          f"{'calls':>7} {'blocks':>7} {'correct':>8}")
    for label, result, exe in runs:
        ok = all(np.allclose(result.arrays[k], ref.arrays[k], rtol=1e-9)
                 for k in ("u", "v", "p"))
        print(f"{label:<20} {result.gflops():>7.2f}GF "
              f"{PAPER[label]:>6.2f}GF {result.stats.node_calls:>7} "
              f"{exe.partition.compute_blocks:>7} {str(ok):>8}")

    lisp, cmf, f90y = (r for _, r, _ in runs)
    print(f"\nF90Y / CMF  speed ratio: measured "
          f"{cmf.stats.total_cycles / f90y.stats.total_cycles:.2f}x, "
          f"paper {2.99 / 2.79:.2f}x")
    print(f"F90Y / *Lisp speed ratio: measured "
          f"{lisp.stats.total_cycles / f90y.stats.total_cycles:.2f}x, "
          f"paper {2.99 / 1.89:.2f}x")

    print("\nTime breakdown (Fortran-90-Y):")
    for k, v in f90y.stats.breakdown().items():
        print(f"  {k:<5} {v:6.1%}")

    print("\nPer-model summaries:")
    for label, result, _ in runs:
        clock = result.machine.model.clock_hz
        print(" ", summarize(label, result.stats, clock).row())


if __name__ == "__main__":
    main()
