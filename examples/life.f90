
program life
integer, parameter :: n = 64
integer, parameter :: steps = 8
integer, array(n,n) :: grid, neighbors, next
integer it
forall (i=1:n, j=1:n) grid(i,j) = mod(i*i + j*5 + i*j, 3) / 2
do it = 1, steps
   neighbors = cshift(grid, shift=1, dim=1) + cshift(grid, shift=-1, dim=1) &
             + cshift(grid, shift=1, dim=2) + cshift(grid, shift=-1, dim=2) &
             + cshift(cshift(grid, shift=1, dim=1), shift=1, dim=2) &
             + cshift(cshift(grid, shift=1, dim=1), shift=-1, dim=2) &
             + cshift(cshift(grid, shift=-1, dim=1), shift=1, dim=2) &
             + cshift(cshift(grid, shift=-1, dim=1), shift=-1, dim=2)
   next = 0
   where (neighbors == 3)
      next = 1
   end where
   where ((grid == 1) .and. (neighbors == 2))
      next = 1
   end where
   grid = next
end do
end program life
