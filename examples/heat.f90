
program heat
integer, parameter :: n = 64
integer, parameter :: steps = 8
double precision, array(n,n) :: t, tnew
double precision kappa
integer it
kappa = 0.1d0
forall (i=1:n, j=1:n) t(i,j) = mod(i*7 + j*3, 11) * 1.0d0
do it = 1, steps
   tnew = t + kappa * (cshift(t, shift=1, dim=1) + cshift(t, shift=-1, dim=1) &
          + cshift(t, shift=1, dim=2) + cshift(t, shift=-1, dim=2) - 4.0d0 * t)
   t = tnew
end do
end program heat

